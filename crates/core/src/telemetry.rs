//! The telemetry journal — one typed, bounded, sharded event pipeline for
//! everything the paper makes the server *accountable* for.
//!
//! The paper's mechanism is trustworthy because every mediated action
//! leaves a trace: the reference monitor keeps an audit log (Section 3.2),
//! and proxies meter usage so access can be charged for (Section 5.5,
//! "Accounting and Revocation"). Before this module, that accountability
//! was scattered over three ad-hoc sinks — the monitor's private
//! `RwLock<Vec<AuditEntry>>`, the server's unbounded `Mutex<Vec<_>>` event
//! and log vectors with stringly-typed kinds, and per-proxy meter
//! snapshots. This module replaces all of them with:
//!
//! * a single [`Event`] enum — monitor audit decisions, proxy
//!   grant/deny/revoke/expiry, meter charges, agent lifecycle
//!   (admit/dispatch/report), per-agent log lines, and net-layer
//!   rejections ([`RejectKind`]) — stamped with a global sequence number,
//!   a virtual-time timestamp, and a [`Severity`];
//! * a [`Journal`] of per-shard ring buffers with an overflow drop
//!   counter, so memory stays bounded no matter how long a server runs or
//!   how hard an adversary hammers it;
//! * a [`CounterSet`] of atomic counters with a Prometheus-style text
//!   [`CounterSet::snapshot`], so aggregates (denials, charges, admissions)
//!   are readable without walking the journal at all.
//!
//! Appending is cheap by design: one `fetch_add` for the sequence number,
//! one relaxed counter bump, and one short critical section on a single
//! shard's ring — writers on different shards never contend. Readers
//! ([`Journal::snapshot`], the filtered views in `HostMonitor` and the
//! runtime server) pay the collation cost instead, which is the right
//! trade for a hot-path-write / cold-path-read log.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_wire::{Decoder, Encoder, Wire, WireError};
use parking_lot::Mutex;

use crate::domain::DomainId;
use crate::monitor::SystemOp;

/// How loudly an event should be treated by dashboards and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine bookkeeping (grants, charges, log lines, lifecycle).
    Info,
    /// Expected-but-notable (expiry, revocation taking effect).
    Warn,
    /// A refused or rejected action — the security-relevant record.
    Security,
}

impl Severity {
    /// Stable lower-case label, for rendering and wire transport.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Security => "security",
        }
    }

    /// Dense discriminant (0, 1, 2) for wire transport.
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Severity::index`].
    pub fn from_index(i: u8) -> Option<Severity> {
        match i {
            0 => Some(Severity::Info),
            1 => Some(Severity::Warn),
            2 => Some(Severity::Security),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed category for a rejected input — the former `&'static str` kinds
/// of the server's `SecurityEvent`, promoted to an enum so experiments and
/// tests match on variants instead of strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectKind {
    /// A datagram failed authentication, decoding, or integrity checks.
    BadDatagram,
    /// A datagram was stale or its nonce was already consumed.
    Replay,
    /// An agent's credentials failed verification (tampered, expired,
    /// uncertified).
    BadCredentials,
    /// The executing identity is outside the credentialed name subtree.
    BadIdentity,
    /// The agent image failed validation or byte-code verification.
    BadImage,
    /// Agent code tried to shadow a pre-loaded system module.
    ImpostorModule,
    /// An agent with this name is already resident.
    DuplicateAgent,
    /// Mail arrived for an agent that is not resident here.
    MailDenied,
    /// A report or reply could not be delivered to its home site.
    ReportUndeliverable,
    /// A transfer or report frame for an already-processed `(agent, seq)`
    /// key arrived again — acknowledged, but not applied twice.
    DuplicateHop,
}

impl RejectKind {
    /// Stable short label (the pre-refactor string kind), for rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectKind::BadDatagram => "bad-datagram",
            RejectKind::Replay => "replay",
            RejectKind::BadCredentials => "bad-credentials",
            RejectKind::BadIdentity => "bad-identity",
            RejectKind::BadImage => "bad-image",
            RejectKind::ImpostorModule => "impostor-module",
            RejectKind::DuplicateAgent => "duplicate-agent",
            RejectKind::MailDenied => "mail-denied",
            RejectKind::ReportUndeliverable => "report-undeliverable",
            RejectKind::DuplicateHop => "duplicate-hop",
        }
    }
}

impl std::fmt::Display for RejectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Identifies one agent tour end to end. Minted once at launch and
/// propagated in every wire frame the tour produces, so the spans of a
/// whole itinerary — retries, skipped hops, recoveries, reports — merge
/// into a single causal tree no matter how many servers they crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace. Globally unique: the minting
/// journal's tag occupies the high bits (see [`Journal::with_span_tag`]),
/// so independently minted ids from different servers never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What phase of a tour a span covers — the span taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// The admission pipeline at a receiving server (credential
    /// verification through domain creation). Child of the transfer that
    /// delivered the agent.
    Admission,
    /// One 6-step bind protocol run (`env.get_resource`). Child of the
    /// admission of the stay that asked.
    Bind,
    /// One proxy invocation (`env.invoke`). Child of the admission.
    Access,
    /// A launch or child dispatch leaving the home server. Root of the
    /// trace (launch) or child of the dispatching stay's admission.
    Dispatch,
    /// One reliable transfer leg, from first send to delivery ack (or to
    /// its dead stop). Child of the dispatch or admission that sent it.
    Transfer,
    /// One retry of a reliable frame; `dur_ns` is the backoff actually
    /// waited. Child of the transfer (or report) frame being retried.
    Retry,
    /// A status report's journey home. Child of the admission (normal
    /// completion) or transfer (dead-stop recovery) that caused it.
    Report,
}

impl SpanKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::Admission,
        SpanKind::Bind,
        SpanKind::Access,
        SpanKind::Dispatch,
        SpanKind::Transfer,
        SpanKind::Retry,
        SpanKind::Report,
    ];

    /// Stable kebab-case label (used by the JSONL trace export).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Admission => "admission",
            SpanKind::Bind => "bind",
            SpanKind::Access => "access",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Transfer => "transfer",
            SpanKind::Retry => "retry",
            SpanKind::Report => "report",
        }
    }

    /// Inverse of [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The causal coordinates of one span: which trace it belongs to, its own
/// id, and the span that caused it (`None` for a trace root). This is the
/// context that travels **in the wire frames**, so a receiving server can
/// parent its admission span to the sender's transfer span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The tour this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The causing span (`None` = trace root).
    pub parent: Option<SpanId>,
}

impl SpanContext {
    /// A root context (no parent).
    pub fn root(trace: TraceId, span: SpanId) -> Self {
        SpanContext {
            trace,
            span,
            parent: None,
        }
    }

    /// A child context in the same trace.
    pub fn child(&self, span: SpanId) -> Self {
        SpanContext {
            trace: self.trace,
            span,
            parent: Some(self.span),
        }
    }
}

impl Wire for TraceId {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(TraceId(d.get_varint()?))
    }
}

impl Wire for SpanId {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SpanId(d.get_varint()?))
    }
}

impl Wire for SpanContext {
    fn encode(&self, e: &mut Encoder) {
        self.trace.encode(e);
        self.span.encode(e);
        self.parent.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SpanContext {
            trace: TraceId::decode(d)?,
            span: SpanId::decode(d)?,
            parent: Option::<SpanId>::decode(d)?,
        })
    }
}

/// One telemetry event. Every accountable action in the system is a
/// variant here; free-text detail survives only as a field, never as the
/// discriminant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A reference-monitor decision (Section 3.2's audit log).
    Audit {
        /// Who asked.
        caller: DomainId,
        /// What was asked.
        op: SystemOp,
        /// Whether it was allowed.
        allowed: bool,
    },
    /// A proxy was issued to an agent (Fig. 6 step 5).
    ProxyGrant {
        /// The resource bound.
        resource: Urn,
        /// The protection domain receiving the capability.
        holder: DomainId,
    },
    /// A bind request was refused (policy, quota, or missing resource).
    ProxyDeny {
        /// The resource requested.
        resource: Urn,
        /// The protection domain that asked.
        holder: DomainId,
        /// Why (display of the bind error).
        detail: String,
    },
    /// A resource manager invalidated a proxy (Section 5.5 revocation).
    ProxyRevoke {
        /// The revoked proxy's resource.
        resource: Urn,
        /// The domain that held it.
        holder: DomainId,
    },
    /// An invocation was refused because the proxy had expired.
    ProxyExpiry {
        /// The expired proxy's resource.
        resource: Urn,
        /// The domain that held it.
        holder: DomainId,
        /// The expiry instant that was exceeded.
        not_after: u64,
    },
    /// A metered invocation was charged (Section 5.5 accounting).
    MeterCharge {
        /// The resource invoked.
        resource: Urn,
        /// The paying domain.
        holder: DomainId,
        /// Method name (resolved from the interned id at emission).
        method: String,
        /// Tariff units charged for this call.
        amount: u64,
    },
    /// An agent passed admission and got a protection domain.
    AgentAdmitted {
        /// The admitted agent.
        agent: Urn,
        /// Its new protection domain.
        domain: DomainId,
        /// The itinerary hop this admission is for — with at-least-once
        /// transfer delivery, (agent, hop) is the idempotency key, so a
        /// journal never shows the same pair admitted twice.
        hop: u64,
    },
    /// An agent (or launch request) was sent toward another server.
    AgentDispatched {
        /// The traveling agent.
        agent: Urn,
        /// Where it was sent.
        dest: Urn,
    },
    /// A status report was recorded at this (home) server.
    AgentReported {
        /// The reporting agent.
        agent: Urn,
        /// Outcome label: `completed`, `failed`, `refused`, `quota`.
        status: &'static str,
    },
    /// A line the agent wrote through `env.log`.
    AgentLog {
        /// The writing agent.
        agent: Urn,
        /// The line.
        text: String,
    },
    /// A security-relevant rejection (bad datagram, credentials, image…).
    Rejected {
        /// Typed category.
        kind: RejectKind,
        /// Human-readable detail.
        detail: String,
    },
    /// A transfer (or launch) was re-sent after its delivery ack timed
    /// out — the fault-tolerant migration layer at work.
    TransferRetried {
        /// The traveling agent.
        agent: Urn,
        /// The destination being retried.
        dest: Urn,
        /// The hop being retried (the idempotency key's sequence half).
        hop: u64,
        /// Which attempt this is (2 = first retry).
        attempt: u32,
    },
    /// Retries toward a stop exhausted and the itinerary supplied a
    /// fallback, so the agent was re-routed around the dead stop.
    HopSkipped {
        /// The traveling agent.
        agent: Urn,
        /// The unreachable stop that was given up on.
        skipped: Urn,
        /// The fallback stop the agent was re-routed to.
        next: Urn,
        /// The hop at which the skip happened.
        hop: u64,
    },
    /// A dead-stopped agent's fate was resolved — no orphans: it was
    /// either re-routed or reported home as `Failed(hop)`.
    AgentRecovered {
        /// The agent whose fate was resolved.
        agent: Urn,
        /// The hop at which recovery happened.
        hop: u64,
        /// How it was resolved: `skipped` or `sent-home`.
        disposition: &'static str,
    },
    /// An idle agent was serialized into the bundle store and its
    /// scheduler task released; it holds only its encoded bytes until
    /// a message or tour resume wakes it.
    AgentHibernated {
        /// The agent that was spilled.
        agent: Urn,
        /// The hop it was admitted at (half of the wake identity).
        hop: u64,
        /// Serialized bundle size, bytes.
        bytes: u64,
    },
    /// A hibernated agent was rehydrated from its bundle and handed
    /// back to the scheduler.
    AgentWoken {
        /// The agent that was woken.
        agent: Urn,
        /// The hop it resumes at.
        hop: u64,
    },
    /// A restarted server re-admitted an in-flight agent recorded in
    /// its admission write-ahead log (idempotent on `(agent, hop)`).
    WalReplayed {
        /// The agent that was re-admitted.
        agent: Urn,
        /// The hop the logged admission was for.
        hop: u64,
    },
    /// One completed span of a distributed trace. Each server journals the
    /// spans it observed locally; merging the journals of every server a
    /// tour touched reconstructs the full causal tree (see `core::trace`).
    Span {
        /// Causal coordinates: trace, own id, parent.
        ctx: SpanContext,
        /// Which phase of the tour this span covers.
        kind: SpanKind,
        /// The agent the span is about.
        agent: Urn,
        /// Kind-specific detail (resource + method + outcome for an
        /// access, destination for a transfer, attempt for a retry…).
        detail: String,
        /// Virtual time the spanned work started.
        start_ns: u64,
        /// Duration. Virtual ns for spans that cross the network
        /// (transfer RTT, retry backoff); real ns for local pipeline
        /// spans (admission, bind, access).
        dur_ns: u64,
    },
}

impl Event {
    /// The severity this event is journaled at.
    pub fn severity(&self) -> Severity {
        match self {
            Event::Rejected { .. } | Event::ProxyDeny { .. } => Severity::Security,
            Event::Audit { allowed, .. } => {
                if *allowed {
                    Severity::Info
                } else {
                    Severity::Security
                }
            }
            Event::ProxyRevoke { .. }
            | Event::ProxyExpiry { .. }
            | Event::TransferRetried { .. }
            | Event::HopSkipped { .. }
            | Event::AgentRecovered { .. }
            | Event::WalReplayed { .. } => Severity::Warn,
            _ => Severity::Info,
        }
    }

    /// Stable kebab-case label for the variant — the discriminant a
    /// control-plane client can match on without shipping the full enum
    /// over the wire.
    pub fn label(&self) -> &'static str {
        match self {
            Event::Audit { .. } => "audit",
            Event::ProxyGrant { .. } => "proxy-grant",
            Event::ProxyDeny { .. } => "proxy-deny",
            Event::ProxyRevoke { .. } => "proxy-revoke",
            Event::ProxyExpiry { .. } => "proxy-expiry",
            Event::MeterCharge { .. } => "meter-charge",
            Event::AgentAdmitted { .. } => "agent-admitted",
            Event::AgentDispatched { .. } => "agent-dispatched",
            Event::AgentReported { .. } => "agent-reported",
            Event::AgentLog { .. } => "agent-log",
            Event::Rejected { .. } => "rejected",
            Event::TransferRetried { .. } => "transfer-retried",
            Event::HopSkipped { .. } => "hop-skipped",
            Event::AgentRecovered { .. } => "agent-recovered",
            Event::AgentHibernated { .. } => "agent-hibernated",
            Event::AgentWoken { .. } => "agent-woken",
            Event::WalReplayed { .. } => "wal-replayed",
            Event::Span { .. } => "span",
        }
    }

    /// The agent this event is about, when it is about one.
    pub fn agent(&self) -> Option<&Urn> {
        match self {
            Event::AgentAdmitted { agent, .. }
            | Event::AgentDispatched { agent, .. }
            | Event::AgentReported { agent, .. }
            | Event::AgentLog { agent, .. }
            | Event::TransferRetried { agent, .. }
            | Event::HopSkipped { agent, .. }
            | Event::AgentRecovered { agent, .. }
            | Event::AgentHibernated { agent, .. }
            | Event::AgentWoken { agent, .. }
            | Event::WalReplayed { agent, .. }
            | Event::Span { agent, .. } => Some(agent),
            _ => None,
        }
    }

    /// One-line human rendering of the variant's fields (the label is
    /// *not* included — pair with [`Event::label`]). Deterministic, so
    /// remote and local renderings of the same record compare equal.
    pub fn render(&self) -> String {
        match self {
            Event::Audit {
                caller,
                op,
                allowed,
            } => {
                format!("caller={caller:?} op={op:?} allowed={allowed}")
            }
            Event::ProxyGrant { resource, holder } => {
                format!("resource={resource} holder={holder:?}")
            }
            Event::ProxyDeny {
                resource,
                holder,
                detail,
            } => format!("resource={resource} holder={holder:?} detail={detail}"),
            Event::ProxyRevoke { resource, holder } => {
                format!("resource={resource} holder={holder:?}")
            }
            Event::ProxyExpiry {
                resource,
                holder,
                not_after,
            } => format!("resource={resource} holder={holder:?} not_after={not_after}"),
            Event::MeterCharge {
                resource,
                holder,
                method,
                amount,
            } => format!("resource={resource} holder={holder:?} method={method} amount={amount}"),
            Event::AgentAdmitted { agent, domain, hop } => {
                format!("agent={agent} domain={domain:?} hop={hop}")
            }
            Event::AgentDispatched { agent, dest } => format!("agent={agent} dest={dest}"),
            Event::AgentReported { agent, status } => format!("agent={agent} status={status}"),
            Event::AgentLog { agent, text } => format!("agent={agent} text={text}"),
            Event::Rejected { kind, detail } => format!("kind={kind} detail={detail}"),
            Event::TransferRetried {
                agent,
                dest,
                hop,
                attempt,
            } => format!("agent={agent} dest={dest} hop={hop} attempt={attempt}"),
            Event::HopSkipped {
                agent,
                skipped,
                next,
                hop,
            } => format!("agent={agent} skipped={skipped} next={next} hop={hop}"),
            Event::AgentRecovered {
                agent,
                hop,
                disposition,
            } => format!("agent={agent} hop={hop} disposition={disposition}"),
            Event::AgentHibernated { agent, hop, bytes } => {
                format!("agent={agent} hop={hop} bytes={bytes}")
            }
            Event::AgentWoken { agent, hop } => format!("agent={agent} hop={hop}"),
            Event::WalReplayed { agent, hop } => format!("agent={agent} hop={hop}"),
            Event::Span {
                ctx,
                kind,
                agent,
                detail,
                start_ns,
                dur_ns,
            } => format!(
                "trace={} span={} parent={} kind={kind} agent={agent} detail={detail} \
                 start_ns={start_ns} dur_ns={dur_ns}",
                ctx.trace,
                ctx.span,
                ctx.parent.map_or("-".to_string(), |p| p.to_string()),
            ),
        }
    }
}

/// One journaled record: a globally ordered, timestamped [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Global sequence number (dense, monotone across all shards).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: u64,
    /// Cached severity (computed once at append).
    pub severity: Severity,
    /// The event itself.
    pub event: Event,
}

/// The aggregate counters the journal maintains alongside the rings.
/// `*_total` naming follows Prometheus conventions; see
/// [`CounterSet::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum Counter {
    EventsAppended,
    EventsDropped,
    AuditAllowed,
    AuditDenied,
    ProxyGrants,
    ProxyDenials,
    ProxyRevocations,
    ProxyExpiries,
    MeterCharges,
    ChargeUnits,
    AgentsAdmitted,
    AgentsDispatched,
    AgentsReported,
    LogLines,
    Rejections,
    TransfersRetried,
    HopsSkipped,
    AgentsRecovered,
    SpansRecorded,
    AgentsYielded,
    SlicesRun,
    Steals,
    FramesCoalesced,
    WriteSyscalls,
    AgentsHibernated,
    AgentsWoken,
    WalAppends,
    WalReplays,
}

impl Counter {
    /// All counters, in snapshot order.
    pub const ALL: [Counter; 28] = [
        Counter::EventsAppended,
        Counter::EventsDropped,
        Counter::AuditAllowed,
        Counter::AuditDenied,
        Counter::ProxyGrants,
        Counter::ProxyDenials,
        Counter::ProxyRevocations,
        Counter::ProxyExpiries,
        Counter::MeterCharges,
        Counter::ChargeUnits,
        Counter::AgentsAdmitted,
        Counter::AgentsDispatched,
        Counter::AgentsReported,
        Counter::LogLines,
        Counter::Rejections,
        Counter::TransfersRetried,
        Counter::HopsSkipped,
        Counter::AgentsRecovered,
        Counter::SpansRecorded,
        Counter::AgentsYielded,
        Counter::SlicesRun,
        Counter::Steals,
        Counter::FramesCoalesced,
        Counter::WriteSyscalls,
        Counter::AgentsHibernated,
        Counter::AgentsWoken,
        Counter::WalAppends,
        Counter::WalReplays,
    ];

    /// The exported metric name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsAppended => "ajanta_journal_events_total",
            Counter::EventsDropped => "ajanta_journal_dropped_total",
            Counter::AuditAllowed => "ajanta_audit_allowed_total",
            Counter::AuditDenied => "ajanta_audit_denied_total",
            Counter::ProxyGrants => "ajanta_proxy_grants_total",
            Counter::ProxyDenials => "ajanta_proxy_denials_total",
            Counter::ProxyRevocations => "ajanta_proxy_revocations_total",
            Counter::ProxyExpiries => "ajanta_proxy_expiries_total",
            Counter::MeterCharges => "ajanta_meter_charges_total",
            Counter::ChargeUnits => "ajanta_meter_charge_units_total",
            Counter::AgentsAdmitted => "ajanta_agents_admitted_total",
            Counter::AgentsDispatched => "ajanta_agents_dispatched_total",
            Counter::AgentsReported => "ajanta_agents_reported_total",
            Counter::LogLines => "ajanta_agent_log_lines_total",
            Counter::Rejections => "ajanta_rejections_total",
            Counter::TransfersRetried => "ajanta_transfers_retried_total",
            Counter::HopsSkipped => "ajanta_hops_skipped_total",
            Counter::AgentsRecovered => "ajanta_agents_recovered_total",
            Counter::SpansRecorded => "ajanta_spans_total",
            Counter::AgentsYielded => "ajanta_agent_yields_total",
            Counter::SlicesRun => "ajanta_slices_total",
            Counter::Steals => "ajanta_sched_steals_total",
            Counter::FramesCoalesced => "ajanta_frames_coalesced_total",
            Counter::WriteSyscalls => "ajanta_write_syscalls_total",
            Counter::AgentsHibernated => "ajanta_agents_hibernated_total",
            Counter::AgentsWoken => "ajanta_agents_woken_total",
            Counter::WalAppends => "ajanta_wal_appends_total",
            Counter::WalReplays => "ajanta_wal_replays_total",
        }
    }

    /// One-line `# HELP` text for the exported metric.
    pub fn help(self) -> &'static str {
        match self {
            Counter::EventsAppended => "Events appended to the telemetry journal.",
            Counter::EventsDropped => "Journal records evicted by the capacity bound.",
            Counter::AuditAllowed => "Reference-monitor decisions that allowed the operation.",
            Counter::AuditDenied => "Reference-monitor decisions that denied the operation.",
            Counter::ProxyGrants => "Resource proxies issued at bind time.",
            Counter::ProxyDenials => "Bind requests refused by policy, quota, or lookup.",
            Counter::ProxyRevocations => "Proxies invalidated by a resource manager.",
            Counter::ProxyExpiries => "Invocations refused because the proxy had expired.",
            Counter::MeterCharges => "Metered invocations charged.",
            Counter::ChargeUnits => "Total tariff units charged across all meters.",
            Counter::AgentsAdmitted => "Agents that passed admission and got a domain.",
            Counter::AgentsDispatched => "Agents (or launches) sent toward another server.",
            Counter::AgentsReported => "Status reports recorded at this home server.",
            Counter::LogLines => "Lines agents wrote through env.log.",
            Counter::Rejections => "Security-relevant rejections of any kind.",
            Counter::TransfersRetried => "Reliable-transfer frames re-sent after ack timeout.",
            Counter::HopsSkipped => "Dead stops routed around via itinerary fallback.",
            Counter::AgentsRecovered => "Dead-stopped agents resolved (skipped or sent home).",
            Counter::SpansRecorded => "Trace spans journaled locally.",
            Counter::AgentsYielded => "Cooperative yields taken by agent slices.",
            Counter::SlicesRun => "Scheduler slices executed by the worker pool.",
            Counter::Steals => "Run-queue steals between scheduler workers.",
            Counter::FramesCoalesced => "Wire frames carried by coalesced socket writes.",
            Counter::WriteSyscalls => "Socket write syscalls issued by the data plane.",
            Counter::AgentsHibernated => "Idle agents serialized into the bundle store.",
            Counter::AgentsWoken => "Hibernated agents rehydrated back to the scheduler.",
            Counter::WalAppends => "Admission records appended to the write-ahead log.",
            Counter::WalReplays => "In-flight agents re-admitted from a replayed WAL.",
        }
    }
}

/// Exported name of the per-shard journal eviction counter family
/// (labeled `{shard="i"}`); [`Counter::EventsDropped`] is its sum.
pub const SHARD_DROPPED_NAME: &str = "ajanta_journal_shard_dropped_total";

/// `# HELP` text for [`SHARD_DROPPED_NAME`].
pub const SHARD_DROPPED_HELP: &str =
    "Journal ring evictions attributed to the shard that overflowed.";

/// How many independently locked rings the journal spreads appends over.
/// The global sequence number doubles as the shard selector, so successive
/// appends — even from one thread — land on successive shards and writers
/// only contend at 1/SHARDS probability.
const SHARDS: usize = 8;

/// A fixed set of atomic counters, cheap to bump from any thread.
#[derive(Debug, Default)]
pub struct CounterSet {
    counters: [AtomicU64; Counter::ALL.len()],
    /// Per-shard eviction counts; `Counter::EventsDropped` is their sum.
    /// Exposed with a `shard` label so bounded-ring loss is attributable
    /// to the shard that overflowed.
    shard_drops: [AtomicU64; SHARDS],
}

impl CounterSet {
    /// A zeroed set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Counts one eviction in shard `shard` (and in the aggregate).
    #[inline]
    pub fn add_shard_drop(&self, shard: usize) {
        self.shard_drops[shard].fetch_add(1, Ordering::Relaxed);
        self.add(Counter::EventsDropped, 1);
    }

    /// Evictions charged to one shard.
    pub fn shard_drops(&self, shard: usize) -> u64 {
        self.shard_drops[shard].load(Ordering::Relaxed)
    }

    /// A point-in-time typed copy of every counter — the single source
    /// both the Prometheus text renderer and the control-plane wire
    /// encoding serialize from.
    pub fn typed_snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            values: Counter::ALL.iter().map(|c| self.get(*c)).collect(),
            shard_drops: self
                .shard_drops
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Prometheus-style text exposition (see
    /// [`CountersSnapshot::render`]).
    pub fn snapshot(&self) -> String {
        self.typed_snapshot().render()
    }
}

/// A plain-value copy of a [`CounterSet`]: one value per [`Counter::ALL`]
/// entry plus the per-shard journal eviction counts. Wire-encodable, so a
/// control-plane server ships it instead of pre-rendered text, and
/// mergeable, so a CLI can aggregate a whole fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Counter values, in [`Counter::ALL`] order.
    pub values: Vec<u64>,
    /// Per-shard eviction counts ([`Counter::EventsDropped`] is the sum).
    pub shard_drops: Vec<u64>,
}

impl CountersSnapshot {
    /// An all-zero snapshot (for folding merges).
    pub fn empty() -> Self {
        CountersSnapshot {
            values: vec![0; Counter::ALL.len()],
            shard_drops: vec![0; SHARDS],
        }
    }

    /// The captured value of one counter (0 if the snapshot predates it).
    pub fn get(&self, c: Counter) -> u64 {
        self.values.get(c as usize).copied().unwrap_or(0)
    }

    /// Accumulates another snapshot into this one, element-wise — how
    /// per-server counters aggregate into a fleet-wide view.
    pub fn merge(&mut self, other: &CountersSnapshot) {
        if self.values.len() < other.values.len() {
            self.values.resize(other.values.len(), 0);
        }
        for (v, o) in self.values.iter_mut().zip(other.values.iter()) {
            *v += o;
        }
        if self.shard_drops.len() < other.shard_drops.len() {
            self.shard_drops.resize(other.shard_drops.len(), 0);
        }
        for (v, o) in self.shard_drops.iter_mut().zip(other.shard_drops.iter()) {
            *v += o;
        }
    }

    /// Prometheus text exposition: for every counter a `# HELP` line, a
    /// `# TYPE … counter` line, and the `name value` sample, in
    /// [`Counter::ALL`] order; then the per-shard eviction family
    /// [`SHARD_DROPPED_NAME`] with one `{shard="i"}` sample per shard.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                self.get(c),
                name = c.name(),
                help = c.help(),
            ));
        }
        out.push_str(&format!(
            "# HELP {SHARD_DROPPED_NAME} {SHARD_DROPPED_HELP}\n\
             # TYPE {SHARD_DROPPED_NAME} counter\n"
        ));
        for (i, d) in self.shard_drops.iter().enumerate() {
            out.push_str(&format!("{SHARD_DROPPED_NAME}{{shard=\"{i}\"}} {d}\n"));
        }
        out
    }
}

impl Wire for CountersSnapshot {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.values.len() as u64);
        for v in &self.values {
            e.put_varint(*v);
        }
        e.put_varint(self.shard_drops.len() as u64);
        for v in &self.shard_drops {
            e.put_varint(*v);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = d.get_varint()? as usize;
        if n > 4096 {
            return Err(WireError::TooLong(n as u64));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(d.get_varint()?);
        }
        let m = d.get_varint()? as usize;
        if m > 4096 {
            return Err(WireError::TooLong(m as u64));
        }
        let mut shard_drops = Vec::with_capacity(m);
        for _ in 0..m {
            shard_drops.push(d.get_varint()?);
        }
        Ok(CountersSnapshot {
            values,
            shard_drops,
        })
    }
}

/// One shard: a bounded ring. Its eviction count lives in the journal's
/// [`CounterSet`], labeled by shard index.
#[derive(Debug)]
struct Shard {
    ring: Mutex<VecDeque<Record>>,
}

/// Bucket count of a [`Histo`]: one bucket per power of two, covering the
/// full `u64` range.
pub const HISTO_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of `u64` samples (nanoseconds, in
/// this crate's use). Bucket `b` holds samples whose value fits in `b`
/// bits: bucket 0 is exactly `{0}`, bucket `b ≥ 1` covers
/// `[2^(b-1), 2^b - 1]`. Recording is three relaxed atomic adds plus one
/// `fetch_max` — safe from any thread, never blocking, and `sum`/`count`
/// are exact (only the quantiles are bucket-resolution approximations).
#[derive(Debug)]
pub struct Histo {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histo {
    fn default() -> Self {
        Histo {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for 0, otherwise its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTO_BUCKETS - 1)
}

/// The inclusive upper bound of bucket `b` (`u64::MAX` for the last).
#[inline]
fn bucket_bound(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Self {
        Histo::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy, suitable for merging across servers.
    pub fn snapshot(&self) -> HistoSnapshot {
        let mut buckets = [0u64; HISTO_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        HistoSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of a [`Histo`], mergeable across servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Per-bucket sample counts (see [`Histo`] for the bucket layout).
    pub buckets: [u64; HISTO_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        HistoSnapshot {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistoSnapshot {
    /// An empty snapshot (for folding merges).
    pub fn empty() -> Self {
        HistoSnapshot::default()
    }

    /// Accumulates another snapshot into this one — how per-server
    /// histograms aggregate into a world-wide distribution.
    pub fn merge(&mut self, other: &HistoSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0 < q ≤ 1), resolved to its bucket's inclusive
    /// upper bound and clamped to the observed max — so `quantile(1.0)`
    /// is exactly `max`, and larger `q` never yields a smaller answer.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bound(b).min(self.max);
            }
        }
        self.max
    }
}

impl Wire for HistoSnapshot {
    fn encode(&self, e: &mut Encoder) {
        // Sparse bucket encoding: only non-zero buckets travel, as
        // (index, count) pairs — most histograms occupy a handful of
        // the 64 log₂ buckets.
        let nonzero = self.buckets.iter().filter(|b| **b != 0).count();
        e.put_varint(nonzero as u64);
        for (i, b) in self.buckets.iter().enumerate() {
            if *b != 0 {
                e.put_varint(i as u64);
                e.put_varint(*b);
            }
        }
        e.put_varint(self.count);
        e.put_varint(self.sum);
        e.put_varint(self.max);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let n = d.get_varint()? as usize;
        if n > HISTO_BUCKETS {
            return Err(WireError::TooLong(n as u64));
        }
        let mut buckets = [0u64; HISTO_BUCKETS];
        for _ in 0..n {
            let i = d.get_varint()? as usize;
            if i >= HISTO_BUCKETS {
                return Err(WireError::Invalid("histogram bucket index out of range"));
            }
            buckets[i] = d.get_varint()?;
        }
        Ok(HistoSnapshot {
            buckets,
            count: d.get_varint()?,
            sum: d.get_varint()?,
            max: d.get_varint()?,
        })
    }
}

/// The instrumented hot paths, each with its own [`Histo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoPath {
    /// `ProxyControl::check_id` — the per-invocation access check.
    ProxyCheck,
    /// The 6-step bind protocol (`Shared::bind_resource`), real ns.
    Bind,
    /// Reliable transfer round-trip: first send to delivery ack, virtual
    /// ns (includes retry backoffs).
    TransferRtt,
    /// Backoff actually waited before one retry, virtual ns.
    RetryBackoff,
    /// End-to-end hop latency: original virtual send time to admission at
    /// the destination, virtual ns.
    HopLatency,
    /// One scheduler slice of agent execution, real ns.
    SliceDuration,
    /// Time a ready task waited in a run-queue before a worker picked it
    /// up, real ns.
    ReadyDwell,
    /// Frames carried by one coalesced socket write — a count, not a
    /// duration (the one non-nanosecond path).
    FramesPerWrite,
    /// Serializing an idle agent into its bundle and spilling it to
    /// the store, real ns.
    HibernateLatency,
    /// Rehydrating a hibernated agent's bundle back into a runnable
    /// task, real ns.
    WakeLatency,
}

impl HistoPath {
    /// All paths, in snapshot order.
    pub const ALL: [HistoPath; 10] = [
        HistoPath::ProxyCheck,
        HistoPath::Bind,
        HistoPath::TransferRtt,
        HistoPath::RetryBackoff,
        HistoPath::HopLatency,
        HistoPath::SliceDuration,
        HistoPath::ReadyDwell,
        HistoPath::FramesPerWrite,
        HistoPath::HibernateLatency,
        HistoPath::WakeLatency,
    ];

    /// The exported metric name (a nanosecond distribution, except
    /// `FramesPerWrite`, which distributes a per-write frame count).
    pub fn name(self) -> &'static str {
        match self {
            HistoPath::ProxyCheck => "ajanta_proxy_check_ns",
            HistoPath::Bind => "ajanta_bind_ns",
            HistoPath::TransferRtt => "ajanta_transfer_rtt_ns",
            HistoPath::RetryBackoff => "ajanta_retry_backoff_ns",
            HistoPath::HopLatency => "ajanta_hop_latency_ns",
            HistoPath::SliceDuration => "ajanta_slice_ns",
            HistoPath::ReadyDwell => "ajanta_ready_dwell_ns",
            HistoPath::FramesPerWrite => "ajanta_frames_per_write",
            HistoPath::HibernateLatency => "ajanta_hibernate_ns",
            HistoPath::WakeLatency => "ajanta_wake_ns",
        }
    }

    /// One-line `# HELP` text for the exported distribution.
    pub fn help(self) -> &'static str {
        match self {
            HistoPath::ProxyCheck => "Per-invocation proxy access check, real ns.",
            HistoPath::Bind => "The 6-step resource bind protocol, real ns.",
            HistoPath::TransferRtt => {
                "Reliable transfer round-trip (first send to delivery ack), virtual ns."
            }
            HistoPath::RetryBackoff => "Backoff actually waited before one retry, virtual ns.",
            HistoPath::HopLatency => {
                "End-to-end hop latency (send to admission at destination), virtual ns."
            }
            HistoPath::SliceDuration => "One scheduler slice of agent execution, real ns.",
            HistoPath::ReadyDwell => "Time a ready task waited in a run-queue, real ns.",
            HistoPath::FramesPerWrite => "Frames carried by one coalesced socket write (count).",
            HistoPath::HibernateLatency => "Serializing an idle agent into its bundle, real ns.",
            HistoPath::WakeLatency => "Rehydrating a hibernated agent's bundle, real ns.",
        }
    }
}

/// Renders one histogram in Prometheus summary style: `# HELP` /
/// `# TYPE … summary`, the three quantile gauges, `_sum` and `_count`,
/// then the observed max as its own single-sample gauge family.
pub fn render_histo(path: HistoPath, s: &HistoSnapshot, out: &mut String) {
    let name = path.name();
    out.push_str(&format!(
        "# HELP {name} {}\n# TYPE {name} summary\n",
        path.help()
    ));
    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
        out.push_str(&format!(
            "{name}{{quantile=\"{label}\"}} {}\n",
            s.quantile(q)
        ));
    }
    out.push_str(&format!("{name}_sum {}\n", s.sum));
    out.push_str(&format!("{name}_count {}\n", s.count));
    out.push_str(&format!(
        "# HELP {name}_max Largest sample observed on this path.\n\
         # TYPE {name}_max gauge\n{name}_max {}\n",
        s.max
    ));
}

/// One [`Histo`] per [`HistoPath`]; every [`Journal`] owns a set.
#[derive(Debug, Default)]
pub struct HistoSet {
    histos: [Histo; HistoPath::ALL.len()],
}

impl HistoSet {
    /// An empty set.
    pub fn new() -> Self {
        HistoSet::default()
    }

    /// Records one sample on one path.
    #[inline]
    pub fn record(&self, path: HistoPath, v: u64) {
        self.histos[path as usize].record(v);
    }

    /// The histogram for one path.
    pub fn get(&self, path: HistoPath) -> &Histo {
        &self.histos[path as usize]
    }

    /// A point-in-time typed copy of every path's histogram, in
    /// [`HistoPath::ALL`] order.
    pub fn typed_snapshot(&self) -> Vec<HistoSnapshot> {
        HistoPath::ALL
            .iter()
            .map(|p| self.get(*p).snapshot())
            .collect()
    }

    /// Prometheus-style text exposition of every path (see
    /// [`render_histo`]).
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (path, s) in HistoPath::ALL.iter().zip(self.typed_snapshot().iter()) {
            render_histo(*path, s, &mut out);
        }
        out
    }
}

/// Everything a journal exports, as one typed, Wire-encodable value:
/// counters (with per-shard drop attribution) plus every hot-path
/// histogram. The Prometheus text renderer and the control-plane protocol
/// both serialize from this — one source of truth for every metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The aggregate counters.
    pub counters: CountersSnapshot,
    /// Histograms, in [`HistoPath::ALL`] order.
    pub histos: Vec<HistoSnapshot>,
}

impl TelemetrySnapshot {
    /// An all-zero snapshot (for folding merges).
    pub fn empty() -> Self {
        TelemetrySnapshot {
            counters: CountersSnapshot::empty(),
            histos: vec![HistoSnapshot::empty(); HistoPath::ALL.len()],
        }
    }

    /// The captured histogram of one path (empty if absent).
    pub fn histo(&self, path: HistoPath) -> HistoSnapshot {
        self.histos.get(path as usize).cloned().unwrap_or_default()
    }

    /// Accumulates another snapshot into this one — counters add, each
    /// path's histogram merges bucket-wise.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.counters.merge(&other.counters);
        if self.histos.len() < other.histos.len() {
            self.histos
                .resize(other.histos.len(), HistoSnapshot::empty());
        }
        for (h, o) in self.histos.iter_mut().zip(other.histos.iter()) {
            h.merge(o);
        }
    }

    /// Full Prometheus text exposition: counters then histograms, with
    /// `# HELP` / `# TYPE` metadata on every family.
    pub fn render(&self) -> String {
        let mut out = self.counters.render();
        for (path, s) in HistoPath::ALL.iter().zip(self.histos.iter()) {
            render_histo(*path, s, &mut out);
        }
        out
    }
}

impl Wire for TelemetrySnapshot {
    fn encode(&self, e: &mut Encoder) {
        self.counters.encode(e);
        e.put_varint(self.histos.len() as u64);
        for h in &self.histos {
            h.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let counters = CountersSnapshot::decode(d)?;
        let n = d.get_varint()? as usize;
        if n > 256 {
            return Err(WireError::TooLong(n as u64));
        }
        let mut histos = Vec::with_capacity(n);
        for _ in 0..n {
            histos.push(HistoSnapshot::decode(d)?);
        }
        Ok(TelemetrySnapshot { counters, histos })
    }
}

/// Default total capacity (records retained across all shards).
pub const DEFAULT_CAPACITY: usize = 8192;

/// The bounded, sharded, append-only event journal.
///
/// Construction is cheap; servers hold it in an `Arc` shared between the
/// monitor, the registry path, proxies, and the delivery loop. When the
/// journal is full the **oldest** record in the selected shard is dropped
/// and counted — recent history is always retained, and
/// [`Journal::dropped`] says exactly how much was lost.
pub struct Journal {
    seq: AtomicU64,
    shards: Box<[Shard]>,
    per_shard: usize,
    counters: CounterSet,
    histos: HistoSet,
    /// Next local span serial; combined with `span_tag` by
    /// [`Journal::mint_span`].
    next_span: AtomicU64,
    /// High bits mixed into every minted [`SpanId`]/[`TraceId`] so ids
    /// from different servers never collide (see
    /// [`Journal::with_span_tag`]).
    span_tag: u64,
    /// Virtual-time source; the default returns 0 (standalone use, e.g.
    /// a monitor outside any server, where no clock exists).
    clock: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("seq", &self.seq)
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// A journal with the default capacity.
    pub fn new() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }

    /// A journal retaining at most `capacity` records (rounded up to a
    /// multiple of the shard count; minimum one record per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Journal {
            seq: AtomicU64::new(0),
            shards: (0..SHARDS)
                .map(|_| Shard {
                    ring: Mutex::new(VecDeque::new()),
                })
                .collect(),
            per_shard,
            counters: CounterSet::new(),
            histos: HistoSet::new(),
            next_span: AtomicU64::new(1),
            span_tag: 0,
            clock: None,
        }
    }

    /// Attaches a virtual-time source; subsequent [`Journal::append`]s are
    /// stamped with it. (Builder-style: call before sharing the journal.)
    pub fn with_clock(mut self, clock: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        self.clock = Some(Arc::new(clock));
        self
    }

    /// Sets the id-uniqueness tag mixed into every minted span and trace
    /// id: `tag` occupies the high 32 bits, the local serial the low 32.
    /// Servers derive the tag from a hash of their name, so ids minted
    /// independently across a world never collide. (Builder-style: call
    /// before sharing the journal.)
    pub fn with_span_tag(mut self, tag: u32) -> Self {
        self.span_tag = (tag as u64) << 32;
        self
    }

    /// Mints a fresh, globally unique [`SpanId`].
    pub fn mint_span(&self) -> SpanId {
        SpanId(self.span_tag | (self.next_span.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF))
    }

    /// Mints a fresh [`TraceId`] (same uniqueness scheme as spans).
    pub fn mint_trace(&self) -> TraceId {
        TraceId(self.span_tag | (self.next_span.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF))
    }

    /// Current virtual time according to the attached clock (0 if none).
    pub fn now(&self) -> u64 {
        self.clock.as_ref().map_or(0, |c| c())
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Appends one event stamped with the journal clock's current time.
    /// Returns the record's global sequence number.
    pub fn append(&self, event: Event) -> u64 {
        self.append_at(self.now(), event)
    }

    /// Appends one event with an explicit timestamp.
    pub fn append_at(&self, at: u64, event: Event) -> u64 {
        self.bump(&event);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = Record {
            seq,
            at,
            severity: event.severity(),
            event,
        };
        let shard_idx = (seq % self.shards.len() as u64) as usize;
        let mut ring = self.shards[shard_idx].ring.lock();
        if ring.len() >= self.per_shard {
            ring.pop_front();
            self.counters.add_shard_drop(shard_idx);
        }
        ring.push_back(record);
        seq
    }

    /// Updates the aggregate counters for one event.
    fn bump(&self, event: &Event) {
        self.counters.add(Counter::EventsAppended, 1);
        let c = match event {
            Event::Audit { allowed: true, .. } => Counter::AuditAllowed,
            Event::Audit { allowed: false, .. } => Counter::AuditDenied,
            Event::ProxyGrant { .. } => Counter::ProxyGrants,
            Event::ProxyDeny { .. } => Counter::ProxyDenials,
            Event::ProxyRevoke { .. } => Counter::ProxyRevocations,
            Event::ProxyExpiry { .. } => Counter::ProxyExpiries,
            Event::MeterCharge { amount, .. } => {
                self.counters.add(Counter::ChargeUnits, *amount);
                Counter::MeterCharges
            }
            Event::AgentAdmitted { .. } => Counter::AgentsAdmitted,
            Event::AgentDispatched { .. } => Counter::AgentsDispatched,
            Event::AgentReported { .. } => Counter::AgentsReported,
            Event::AgentLog { .. } => Counter::LogLines,
            Event::Rejected { .. } => Counter::Rejections,
            Event::TransferRetried { .. } => Counter::TransfersRetried,
            Event::HopSkipped { .. } => Counter::HopsSkipped,
            Event::AgentRecovered { .. } => Counter::AgentsRecovered,
            Event::AgentHibernated { .. } => Counter::AgentsHibernated,
            Event::AgentWoken { .. } => Counter::AgentsWoken,
            Event::WalReplayed { .. } => Counter::WalReplays,
            Event::Span { .. } => Counter::SpansRecorded,
        };
        self.counters.add(c, 1);
    }

    /// Records currently retained (≤ [`Journal::capacity`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.ring.lock().len()).sum()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.ring.lock().is_empty())
    }

    /// Total records evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.counters.get(Counter::EventsDropped)
    }

    /// Every retained record, globally ordered by sequence number.
    pub fn snapshot(&self) -> Vec<Record> {
        let mut all: Vec<Record> = self
            .shards
            .iter()
            .flat_map(|s| s.ring.lock().iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_unstable_by_key(|r| r.seq);
        all
    }

    /// The `n` most recent retained records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Record> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Every retained record with `seq >= cursor`, globally ordered — the
    /// journal-follow primitive. Sequence numbers are dense, so a reader
    /// holding `cursor` detects loss exactly: if the first returned
    /// record's seq exceeds the cursor, the gap was evicted (and is
    /// accounted in [`Journal::dropped`]).
    pub fn since(&self, cursor: u64) -> Vec<Record> {
        let mut all: Vec<Record> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.ring
                    .lock()
                    .iter()
                    .filter(|r| r.seq >= cursor)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|r| r.seq);
        all
    }

    /// The sequence number the *next* append will get — i.e. one past the
    /// newest existing record. A fresh follow cursor starts here.
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The aggregate counters.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Shorthand for `counters().get(c)`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// The hot-path latency histograms.
    pub fn histos(&self) -> &HistoSet {
        &self.histos
    }

    /// A typed copy of every counter and histogram this journal exports —
    /// what the control plane ships over the wire, and what
    /// [`Journal::metrics_snapshot`] renders.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters.typed_snapshot(),
            histos: self.histos.typed_snapshot(),
        }
    }

    /// Full Prometheus-style exposition: counters (with per-shard drop
    /// attribution) followed by every hot-path latency distribution, each
    /// family carrying `# HELP` / `# TYPE` metadata.
    pub fn metrics_snapshot(&self) -> String {
        self.telemetry_snapshot().render()
    }
}

/// A lazily attachable handle to a journal plus the context a proxy needs
/// to emit events about itself ([`crate::proxy::ProxyControl`] holds one).
///
/// The fast path pays one relaxed `AtomicBool` load while detached; the
/// lock is touched only after attachment, which happens at most once, at
/// bind time, before the proxy is handed to the agent.
#[derive(Debug, Default)]
pub struct JournalHook {
    attached: AtomicBool,
    slot: Mutex<Option<(Arc<Journal>, Urn)>>,
}

impl JournalHook {
    /// A detached hook.
    pub fn new() -> Self {
        JournalHook::default()
    }

    /// Attaches `journal`, tagging future events with `resource`.
    pub fn attach(&self, journal: Arc<Journal>, resource: Urn) {
        *self.slot.lock() = Some((journal, resource));
        self.attached.store(true, Ordering::Release);
    }

    /// Whether a journal has been attached — one relaxed-cost load, so
    /// hot paths can skip instrumentation work entirely while detached.
    #[inline]
    pub fn is_attached(&self) -> bool {
        self.attached.load(Ordering::Acquire)
    }

    /// Runs `f` with the journal and resource name, if attached.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&Arc<Journal>, &Urn) -> R) -> Option<R> {
        if !self.attached.load(Ordering::Acquire) {
            return None;
        }
        let slot = self.slot.lock();
        slot.as_ref().map(|(j, r)| f(j, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urn(leaf: &str) -> Urn {
        Urn::resource("x.org", [leaf]).unwrap()
    }

    fn reject(detail: &str) -> Event {
        Event::Rejected {
            kind: RejectKind::BadDatagram,
            detail: detail.into(),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_records_ordered() {
        let j = Journal::with_capacity(64);
        for i in 0..10 {
            let seq = j.append_at(i, reject("x"));
            assert_eq!(seq, i);
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.at, i as u64);
        }
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_memory_and_counts_drops() {
        let j = Journal::with_capacity(16);
        assert_eq!(j.capacity(), 16);
        for i in 0..100u64 {
            j.append_at(i, reject("x"));
        }
        assert_eq!(j.len(), 16);
        assert_eq!(j.dropped(), 84);
        assert_eq!(j.counter(Counter::EventsDropped), 84);
        // Single-threaded, round-robin sharding: exactly the newest 16
        // records survive.
        let seqs: Vec<u64> = j.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_event_variants() {
        let j = Journal::new();
        j.append(Event::Audit {
            caller: DomainId(1),
            op: SystemOp::MutateRegistry,
            allowed: true,
        });
        j.append(Event::Audit {
            caller: DomainId(1),
            op: SystemOp::MutateDomainDatabase,
            allowed: false,
        });
        j.append(Event::MeterCharge {
            resource: urn("r"),
            holder: DomainId(1),
            method: "get".into(),
            amount: 7,
        });
        j.append(Event::ProxyGrant {
            resource: urn("r"),
            holder: DomainId(1),
        });
        assert_eq!(j.counter(Counter::AuditAllowed), 1);
        assert_eq!(j.counter(Counter::AuditDenied), 1);
        assert_eq!(j.counter(Counter::MeterCharges), 1);
        assert_eq!(j.counter(Counter::ChargeUnits), 7);
        assert_eq!(j.counter(Counter::ProxyGrants), 1);
        assert_eq!(j.counter(Counter::EventsAppended), 4);
    }

    #[test]
    fn severity_classification() {
        assert_eq!(reject("x").severity(), Severity::Security);
        assert_eq!(
            Event::Audit {
                caller: DomainId(1),
                op: SystemOp::MutateRegistry,
                allowed: false
            }
            .severity(),
            Severity::Security
        );
        assert_eq!(
            Event::AgentLog {
                agent: Urn::agent("x.org", ["a"]).unwrap(),
                text: "hi".into()
            }
            .severity(),
            Severity::Info
        );
        assert_eq!(
            Event::ProxyExpiry {
                resource: urn("r"),
                holder: DomainId(1),
                not_after: 5
            }
            .severity(),
            Severity::Warn
        );
    }

    #[test]
    fn prometheus_snapshot_has_help_type_and_value_per_counter_plus_shard_drops() {
        let j = Journal::new();
        j.append(reject("x"));
        let text = j.counters().snapshot();
        // Per counter: # HELP, # TYPE, value. Then the shard-drop family:
        // one # HELP, one # TYPE, one labeled sample per shard.
        assert_eq!(text.lines().count(), Counter::ALL.len() * 3 + 2 + SHARDS);
        assert!(text.contains("ajanta_rejections_total 1\n"));
        assert!(text.contains("ajanta_journal_events_total 1\n"));
        assert!(text.contains("# TYPE ajanta_rejections_total counter\n"));
        assert!(text.contains("# HELP ajanta_journal_events_total "));
        assert!(text.contains("# TYPE ajanta_journal_shard_dropped_total counter\n"));
        assert!(text.contains("ajanta_journal_shard_dropped_total{shard=\"0\"} 0\n"));
        assert!(text.contains("ajanta_journal_shard_dropped_total{shard=\"7\"} 0\n"));
        // Every exported name is unique.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn shard_drop_lines_attribute_ring_loss() {
        // Capacity 8 = one slot per shard; single-threaded round-robin
        // appends overflow every shard equally.
        let j = Journal::with_capacity(8);
        for i in 0..24u64 {
            j.append_at(i, reject("x"));
        }
        assert_eq!(j.dropped(), 16);
        for shard in 0..SHARDS {
            assert_eq!(j.counters().shard_drops(shard), 2, "shard {shard}");
        }
        let text = j.counters().snapshot();
        assert!(text.contains("ajanta_journal_shard_dropped_total{shard=\"3\"} 2\n"));
        // The typed snapshot is the same source of truth.
        let typed = j.counters().typed_snapshot();
        assert_eq!(typed.shard_drops, vec![2u64; SHARDS]);
        assert_eq!(typed.get(Counter::EventsDropped), 16);
    }

    #[test]
    fn counters_snapshot_roundtrips_on_the_wire_and_merges() {
        let j = Journal::new();
        j.append(reject("x"));
        j.append(reject("y"));
        let snap = j.counters().typed_snapshot();
        let decoded = CountersSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.get(Counter::Rejections), 2);

        let mut merged = CountersSnapshot::empty();
        merged.merge(&snap);
        merged.merge(&snap);
        assert_eq!(merged.get(Counter::Rejections), 4);
        assert_eq!(merged.get(Counter::EventsAppended), 4);
    }

    #[test]
    fn histo_snapshot_roundtrips_on_the_wire() {
        let h = Histo::new();
        for v in [0u64, 1, 3, 255, 70_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let decoded = HistoSnapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.quantile(1.0), s.quantile(1.0));
        // An empty histogram (all buckets zero) also round-trips.
        let empty = HistoSnapshot::empty();
        assert_eq!(HistoSnapshot::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn telemetry_snapshot_is_the_single_source_of_render() {
        let j = Journal::new();
        j.append(reject("x"));
        j.histos().record(HistoPath::Bind, 1000);
        let snap = j.telemetry_snapshot();
        // The text exposition is exactly the typed snapshot's rendering.
        assert_eq!(j.metrics_snapshot(), snap.render());
        // And it survives the wire intact — remote render == local render.
        let decoded = TelemetrySnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded.render(), snap.render());
        assert_eq!(decoded.histo(HistoPath::Bind).count, 1);
        // Fleet aggregation: merging two servers' snapshots adds.
        let mut fleet = TelemetrySnapshot::empty();
        fleet.merge(&snap);
        fleet.merge(&snap);
        assert_eq!(fleet.counters.get(Counter::Rejections), 2);
        assert_eq!(fleet.histo(HistoPath::Bind).count, 2);
    }

    #[test]
    fn journal_since_pages_by_cursor() {
        let j = Journal::with_capacity(64);
        for i in 0..10 {
            j.append_at(i, reject("x"));
        }
        assert_eq!(j.next_seq(), 10);
        let page = j.since(6);
        assert_eq!(page.iter().map(|r| r.seq).collect::<Vec<_>>(), [6, 7, 8, 9]);
        assert!(j.since(10).is_empty());
        assert_eq!(j.since(0).len(), 10);
    }

    #[test]
    fn journal_since_exposes_eviction_gaps() {
        // Capacity 16, 100 appends: only 84..100 survive; a reader who
        // paused at cursor 50 sees the gap start at 84 and the drop
        // counter accounts for what it missed.
        let j = Journal::with_capacity(16);
        for i in 0..100u64 {
            j.append_at(i, reject("x"));
        }
        let page = j.since(50);
        assert_eq!(page.first().unwrap().seq, 84);
        assert_eq!(j.dropped(), 84);
    }

    #[test]
    fn event_labels_and_renderings_are_deterministic() {
        let e = Event::AgentAdmitted {
            agent: Urn::agent("x.org", ["a"]).unwrap(),
            domain: DomainId(3),
            hop: 2,
        };
        assert_eq!(e.label(), "agent-admitted");
        assert_eq!(e.agent().unwrap().to_string(), "ajn://x.org/agent/a");
        assert_eq!(e.render(), e.clone().render());
        let r = reject("boom");
        assert_eq!(r.label(), "rejected");
        assert!(r.agent().is_none());
        assert!(r.render().contains("detail=boom"));
        assert_eq!(Severity::Security.as_str(), "security");
        assert_eq!(
            Severity::from_index(Severity::Warn.index()),
            Some(Severity::Warn)
        );
        assert_eq!(Severity::from_index(9), None);
    }

    #[test]
    fn histogram_concurrent_record_is_exact() {
        // 8 threads × 1000 samples: `sum` and `count` must be exact —
        // lock-free recording loses nothing.
        let j = Arc::new(Journal::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        j.histos().record(HistoPath::ProxyCheck, t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = j.histos().get(HistoPath::ProxyCheck).snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.sum, (0..8000u64).sum::<u64>());
        assert_eq!(s.max, 7999);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket b ≥ 1 covers [2^(b-1), 2^b - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(8), 255);
        assert_eq!(bucket_bound(64), u64::MAX);

        let h = Histo::new();
        for v in [0u64, 1, 2, 3, 4, 255, 256, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[8], 1); // 255
        assert_eq!(s.buckets[9], 1); // 256
        assert_eq!(s.buckets[63], 1); // u64::MAX
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_capped_at_max() {
        let h = Histo::new();
        for v in [3u64, 5, 9, 17, 100, 1000, 5000, 5001, 5002, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let qs: Vec<u64> = (1..=100).map(|i| s.quantile(i as f64 / 100.0)).collect();
        assert!(
            qs.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone quantiles: {qs:?}"
        );
        assert_eq!(s.quantile(1.0), 70_000, "q=1 is exactly the max");
        assert!(s.quantile(0.5) >= 100, "median lands in the 100 bucket+");
        // Merging two snapshots preserves exactness of count/sum/max.
        let mut merged = HistoSnapshot::empty();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.count, 2 * s.count);
        assert_eq!(merged.sum, 2 * s.sum);
        assert_eq!(merged.max, s.max);
        assert_eq!(merged.quantile(1.0), 70_000);
    }

    #[test]
    fn histo_set_snapshot_exports_quantiles_per_path() {
        let j = Journal::new();
        j.histos().record(HistoPath::Bind, 1000);
        j.histos().record(HistoPath::Bind, 3000);
        let text = j.metrics_snapshot();
        assert!(text.contains("ajanta_bind_ns{quantile=\"0.5\"} "));
        assert!(text.contains("ajanta_bind_ns{quantile=\"0.99\"} "));
        assert!(text.contains("ajanta_bind_ns_count 2\n"));
        assert!(text.contains("ajanta_bind_ns_sum 4000\n"));
        assert!(text.contains("ajanta_bind_ns_max 3000\n"));
        // All five paths appear even when unexercised.
        for path in HistoPath::ALL {
            assert!(text.contains(path.name()), "{} missing", path.name());
        }
    }

    #[test]
    fn span_ids_are_unique_across_differently_tagged_journals() {
        let a = Journal::new().with_span_tag(0xA11C);
        let b = Journal::new().with_span_tag(0xB0B0);
        let mut ids: Vec<u64> = Vec::new();
        for _ in 0..100 {
            ids.push(a.mint_span().0);
            ids.push(b.mint_span().0);
        }
        ids.push(a.mint_trace().0);
        ids.push(b.mint_trace().0);
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn span_context_roundtrips_on_the_wire() {
        let root = SpanContext::root(TraceId(0x70DA), SpanId(7));
        let child = root.child(SpanId(9));
        for ctx in [root, child] {
            let bytes = ctx.to_bytes();
            assert_eq!(SpanContext::from_bytes(&bytes).unwrap(), ctx);
        }
        assert_eq!(child.parent, Some(SpanId(7)));
        assert_eq!(child.trace, root.trace);
    }

    #[test]
    fn span_events_bump_the_span_counter() {
        let j = Journal::new().with_span_tag(1);
        let trace = j.mint_trace();
        let span = j.mint_span();
        j.append(Event::Span {
            ctx: SpanContext::root(trace, span),
            kind: SpanKind::Dispatch,
            agent: Urn::agent("x.org", ["a"]).unwrap(),
            detail: "launch".into(),
            start_ns: 0,
            dur_ns: 0,
        });
        assert_eq!(j.counter(Counter::SpansRecorded), 1);
        assert_eq!(
            j.snapshot()[0].severity,
            Severity::Info,
            "spans are info-level"
        );
    }

    #[test]
    fn clock_stamps_appends() {
        let t = Arc::new(AtomicU64::new(42));
        let t2 = Arc::clone(&t);
        let j = Journal::new().with_clock(move || t2.load(Ordering::Relaxed));
        j.append(reject("a"));
        t.store(99, Ordering::Relaxed);
        j.append(reject("b"));
        let snap = j.snapshot();
        assert_eq!(snap[0].at, 42);
        assert_eq!(snap[1].at, 99);
    }

    #[test]
    fn recent_returns_tail() {
        let j = Journal::new();
        for i in 0..10 {
            j.append_at(i, reject("x"));
        }
        let tail = j.recent(3);
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), [7, 8, 9]);
    }

    #[test]
    fn hook_detached_is_a_noop() {
        let hook = JournalHook::new();
        assert_eq!(hook.with(|_, _| 1), None);
        let j = Arc::new(Journal::new());
        hook.attach(Arc::clone(&j), urn("r"));
        assert_eq!(hook.with(|_, r| r.leaf().to_string()), Some("r".into()));
    }
}
