//! The telemetry journal — one typed, bounded, sharded event pipeline for
//! everything the paper makes the server *accountable* for.
//!
//! The paper's mechanism is trustworthy because every mediated action
//! leaves a trace: the reference monitor keeps an audit log (Section 3.2),
//! and proxies meter usage so access can be charged for (Section 5.5,
//! "Accounting and Revocation"). Before this module, that accountability
//! was scattered over three ad-hoc sinks — the monitor's private
//! `RwLock<Vec<AuditEntry>>`, the server's unbounded `Mutex<Vec<_>>` event
//! and log vectors with stringly-typed kinds, and per-proxy meter
//! snapshots. This module replaces all of them with:
//!
//! * a single [`Event`] enum — monitor audit decisions, proxy
//!   grant/deny/revoke/expiry, meter charges, agent lifecycle
//!   (admit/dispatch/report), per-agent log lines, and net-layer
//!   rejections ([`RejectKind`]) — stamped with a global sequence number,
//!   a virtual-time timestamp, and a [`Severity`];
//! * a [`Journal`] of per-shard ring buffers with an overflow drop
//!   counter, so memory stays bounded no matter how long a server runs or
//!   how hard an adversary hammers it;
//! * a [`CounterSet`] of atomic counters with a Prometheus-style text
//!   [`CounterSet::snapshot`], so aggregates (denials, charges, admissions)
//!   are readable without walking the journal at all.
//!
//! Appending is cheap by design: one `fetch_add` for the sequence number,
//! one relaxed counter bump, and one short critical section on a single
//! shard's ring — writers on different shards never contend. Readers
//! ([`Journal::snapshot`], the filtered views in `HostMonitor` and the
//! runtime server) pay the collation cost instead, which is the right
//! trade for a hot-path-write / cold-path-read log.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ajanta_naming::Urn;
use parking_lot::Mutex;

use crate::domain::DomainId;
use crate::monitor::SystemOp;

/// How loudly an event should be treated by dashboards and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine bookkeeping (grants, charges, log lines, lifecycle).
    Info,
    /// Expected-but-notable (expiry, revocation taking effect).
    Warn,
    /// A refused or rejected action — the security-relevant record.
    Security,
}

/// Typed category for a rejected input — the former `&'static str` kinds
/// of the server's `SecurityEvent`, promoted to an enum so experiments and
/// tests match on variants instead of strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectKind {
    /// A datagram failed authentication, decoding, or integrity checks.
    BadDatagram,
    /// A datagram was stale or its nonce was already consumed.
    Replay,
    /// An agent's credentials failed verification (tampered, expired,
    /// uncertified).
    BadCredentials,
    /// The executing identity is outside the credentialed name subtree.
    BadIdentity,
    /// The agent image failed validation or byte-code verification.
    BadImage,
    /// Agent code tried to shadow a pre-loaded system module.
    ImpostorModule,
    /// An agent with this name is already resident.
    DuplicateAgent,
    /// Mail arrived for an agent that is not resident here.
    MailDenied,
    /// A report or reply could not be delivered to its home site.
    ReportUndeliverable,
    /// A transfer or report frame for an already-processed `(agent, seq)`
    /// key arrived again — acknowledged, but not applied twice.
    DuplicateHop,
}

impl RejectKind {
    /// Stable short label (the pre-refactor string kind), for rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectKind::BadDatagram => "bad-datagram",
            RejectKind::Replay => "replay",
            RejectKind::BadCredentials => "bad-credentials",
            RejectKind::BadIdentity => "bad-identity",
            RejectKind::BadImage => "bad-image",
            RejectKind::ImpostorModule => "impostor-module",
            RejectKind::DuplicateAgent => "duplicate-agent",
            RejectKind::MailDenied => "mail-denied",
            RejectKind::ReportUndeliverable => "report-undeliverable",
            RejectKind::DuplicateHop => "duplicate-hop",
        }
    }
}

impl std::fmt::Display for RejectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One telemetry event. Every accountable action in the system is a
/// variant here; free-text detail survives only as a field, never as the
/// discriminant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A reference-monitor decision (Section 3.2's audit log).
    Audit {
        /// Who asked.
        caller: DomainId,
        /// What was asked.
        op: SystemOp,
        /// Whether it was allowed.
        allowed: bool,
    },
    /// A proxy was issued to an agent (Fig. 6 step 5).
    ProxyGrant {
        /// The resource bound.
        resource: Urn,
        /// The protection domain receiving the capability.
        holder: DomainId,
    },
    /// A bind request was refused (policy, quota, or missing resource).
    ProxyDeny {
        /// The resource requested.
        resource: Urn,
        /// The protection domain that asked.
        holder: DomainId,
        /// Why (display of the bind error).
        detail: String,
    },
    /// A resource manager invalidated a proxy (Section 5.5 revocation).
    ProxyRevoke {
        /// The revoked proxy's resource.
        resource: Urn,
        /// The domain that held it.
        holder: DomainId,
    },
    /// An invocation was refused because the proxy had expired.
    ProxyExpiry {
        /// The expired proxy's resource.
        resource: Urn,
        /// The domain that held it.
        holder: DomainId,
        /// The expiry instant that was exceeded.
        not_after: u64,
    },
    /// A metered invocation was charged (Section 5.5 accounting).
    MeterCharge {
        /// The resource invoked.
        resource: Urn,
        /// The paying domain.
        holder: DomainId,
        /// Method name (resolved from the interned id at emission).
        method: String,
        /// Tariff units charged for this call.
        amount: u64,
    },
    /// An agent passed admission and got a protection domain.
    AgentAdmitted {
        /// The admitted agent.
        agent: Urn,
        /// Its new protection domain.
        domain: DomainId,
        /// The itinerary hop this admission is for — with at-least-once
        /// transfer delivery, (agent, hop) is the idempotency key, so a
        /// journal never shows the same pair admitted twice.
        hop: u64,
    },
    /// An agent (or launch request) was sent toward another server.
    AgentDispatched {
        /// The traveling agent.
        agent: Urn,
        /// Where it was sent.
        dest: Urn,
    },
    /// A status report was recorded at this (home) server.
    AgentReported {
        /// The reporting agent.
        agent: Urn,
        /// Outcome label: `completed`, `failed`, `refused`, `quota`.
        status: &'static str,
    },
    /// A line the agent wrote through `env.log`.
    AgentLog {
        /// The writing agent.
        agent: Urn,
        /// The line.
        text: String,
    },
    /// A security-relevant rejection (bad datagram, credentials, image…).
    Rejected {
        /// Typed category.
        kind: RejectKind,
        /// Human-readable detail.
        detail: String,
    },
    /// A transfer (or launch) was re-sent after its delivery ack timed
    /// out — the fault-tolerant migration layer at work.
    TransferRetried {
        /// The traveling agent.
        agent: Urn,
        /// The destination being retried.
        dest: Urn,
        /// The hop being retried (the idempotency key's sequence half).
        hop: u64,
        /// Which attempt this is (2 = first retry).
        attempt: u32,
    },
    /// Retries toward a stop exhausted and the itinerary supplied a
    /// fallback, so the agent was re-routed around the dead stop.
    HopSkipped {
        /// The traveling agent.
        agent: Urn,
        /// The unreachable stop that was given up on.
        skipped: Urn,
        /// The fallback stop the agent was re-routed to.
        next: Urn,
        /// The hop at which the skip happened.
        hop: u64,
    },
    /// A dead-stopped agent's fate was resolved — no orphans: it was
    /// either re-routed or reported home as `Failed(hop)`.
    AgentRecovered {
        /// The agent whose fate was resolved.
        agent: Urn,
        /// The hop at which recovery happened.
        hop: u64,
        /// How it was resolved: `skipped` or `sent-home`.
        disposition: &'static str,
    },
}

impl Event {
    /// The severity this event is journaled at.
    pub fn severity(&self) -> Severity {
        match self {
            Event::Rejected { .. } | Event::ProxyDeny { .. } => Severity::Security,
            Event::Audit { allowed, .. } => {
                if *allowed {
                    Severity::Info
                } else {
                    Severity::Security
                }
            }
            Event::ProxyRevoke { .. }
            | Event::ProxyExpiry { .. }
            | Event::TransferRetried { .. }
            | Event::HopSkipped { .. }
            | Event::AgentRecovered { .. } => Severity::Warn,
            _ => Severity::Info,
        }
    }
}

/// One journaled record: a globally ordered, timestamped [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Global sequence number (dense, monotone across all shards).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: u64,
    /// Cached severity (computed once at append).
    pub severity: Severity,
    /// The event itself.
    pub event: Event,
}

/// The aggregate counters the journal maintains alongside the rings.
/// `*_total` naming follows Prometheus conventions; see
/// [`CounterSet::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum Counter {
    EventsAppended,
    EventsDropped,
    AuditAllowed,
    AuditDenied,
    ProxyGrants,
    ProxyDenials,
    ProxyRevocations,
    ProxyExpiries,
    MeterCharges,
    ChargeUnits,
    AgentsAdmitted,
    AgentsDispatched,
    AgentsReported,
    LogLines,
    Rejections,
    TransfersRetried,
    HopsSkipped,
    AgentsRecovered,
}

impl Counter {
    /// All counters, in snapshot order.
    pub const ALL: [Counter; 18] = [
        Counter::EventsAppended,
        Counter::EventsDropped,
        Counter::AuditAllowed,
        Counter::AuditDenied,
        Counter::ProxyGrants,
        Counter::ProxyDenials,
        Counter::ProxyRevocations,
        Counter::ProxyExpiries,
        Counter::MeterCharges,
        Counter::ChargeUnits,
        Counter::AgentsAdmitted,
        Counter::AgentsDispatched,
        Counter::AgentsReported,
        Counter::LogLines,
        Counter::Rejections,
        Counter::TransfersRetried,
        Counter::HopsSkipped,
        Counter::AgentsRecovered,
    ];

    /// The exported metric name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsAppended => "ajanta_journal_events_total",
            Counter::EventsDropped => "ajanta_journal_dropped_total",
            Counter::AuditAllowed => "ajanta_audit_allowed_total",
            Counter::AuditDenied => "ajanta_audit_denied_total",
            Counter::ProxyGrants => "ajanta_proxy_grants_total",
            Counter::ProxyDenials => "ajanta_proxy_denials_total",
            Counter::ProxyRevocations => "ajanta_proxy_revocations_total",
            Counter::ProxyExpiries => "ajanta_proxy_expiries_total",
            Counter::MeterCharges => "ajanta_meter_charges_total",
            Counter::ChargeUnits => "ajanta_meter_charge_units_total",
            Counter::AgentsAdmitted => "ajanta_agents_admitted_total",
            Counter::AgentsDispatched => "ajanta_agents_dispatched_total",
            Counter::AgentsReported => "ajanta_agents_reported_total",
            Counter::LogLines => "ajanta_agent_log_lines_total",
            Counter::Rejections => "ajanta_rejections_total",
            Counter::TransfersRetried => "ajanta_transfers_retried_total",
            Counter::HopsSkipped => "ajanta_hops_skipped_total",
            Counter::AgentsRecovered => "ajanta_agents_recovered_total",
        }
    }
}

/// A fixed set of atomic counters, cheap to bump from any thread.
#[derive(Debug, Default)]
pub struct CounterSet {
    counters: [AtomicU64; Counter::ALL.len()],
}

impl CounterSet {
    /// A zeroed set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Prometheus-style text exposition: one `name value` line per
    /// counter, in [`Counter::ALL`] order.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for c in Counter::ALL {
            out.push_str(c.name());
            out.push(' ');
            out.push_str(&self.get(c).to_string());
            out.push('\n');
        }
        out
    }
}

/// One shard: a bounded ring plus its own drop counter.
#[derive(Debug)]
struct Shard {
    ring: Mutex<VecDeque<Record>>,
    dropped: AtomicU64,
}

/// How many independently locked rings the journal spreads appends over.
/// The global sequence number doubles as the shard selector, so successive
/// appends — even from one thread — land on successive shards and writers
/// only contend at 1/SHARDS probability.
const SHARDS: usize = 8;

/// Default total capacity (records retained across all shards).
pub const DEFAULT_CAPACITY: usize = 8192;

/// The bounded, sharded, append-only event journal.
///
/// Construction is cheap; servers hold it in an `Arc` shared between the
/// monitor, the registry path, proxies, and the delivery loop. When the
/// journal is full the **oldest** record in the selected shard is dropped
/// and counted — recent history is always retained, and
/// [`Journal::dropped`] says exactly how much was lost.
pub struct Journal {
    seq: AtomicU64,
    shards: Box<[Shard]>,
    per_shard: usize,
    counters: CounterSet,
    /// Virtual-time source; the default returns 0 (standalone use, e.g.
    /// a monitor outside any server, where no clock exists).
    clock: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("seq", &self.seq)
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// A journal with the default capacity.
    pub fn new() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }

    /// A journal retaining at most `capacity` records (rounded up to a
    /// multiple of the shard count; minimum one record per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Journal {
            seq: AtomicU64::new(0),
            shards: (0..SHARDS)
                .map(|_| Shard {
                    ring: Mutex::new(VecDeque::new()),
                    dropped: AtomicU64::new(0),
                })
                .collect(),
            per_shard,
            counters: CounterSet::new(),
            clock: None,
        }
    }

    /// Attaches a virtual-time source; subsequent [`Journal::append`]s are
    /// stamped with it. (Builder-style: call before sharing the journal.)
    pub fn with_clock(mut self, clock: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        self.clock = Some(Arc::new(clock));
        self
    }

    /// Current virtual time according to the attached clock (0 if none).
    pub fn now(&self) -> u64 {
        self.clock.as_ref().map_or(0, |c| c())
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Appends one event stamped with the journal clock's current time.
    /// Returns the record's global sequence number.
    pub fn append(&self, event: Event) -> u64 {
        self.append_at(self.now(), event)
    }

    /// Appends one event with an explicit timestamp.
    pub fn append_at(&self, at: u64, event: Event) -> u64 {
        self.bump(&event);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = Record {
            seq,
            at,
            severity: event.severity(),
            event,
        };
        let shard = &self.shards[(seq % self.shards.len() as u64) as usize];
        let mut ring = shard.ring.lock();
        if ring.len() >= self.per_shard {
            ring.pop_front();
            shard.dropped.fetch_add(1, Ordering::Relaxed);
            self.counters.add(Counter::EventsDropped, 1);
        }
        ring.push_back(record);
        seq
    }

    /// Updates the aggregate counters for one event.
    fn bump(&self, event: &Event) {
        self.counters.add(Counter::EventsAppended, 1);
        let c = match event {
            Event::Audit { allowed: true, .. } => Counter::AuditAllowed,
            Event::Audit { allowed: false, .. } => Counter::AuditDenied,
            Event::ProxyGrant { .. } => Counter::ProxyGrants,
            Event::ProxyDeny { .. } => Counter::ProxyDenials,
            Event::ProxyRevoke { .. } => Counter::ProxyRevocations,
            Event::ProxyExpiry { .. } => Counter::ProxyExpiries,
            Event::MeterCharge { amount, .. } => {
                self.counters.add(Counter::ChargeUnits, *amount);
                Counter::MeterCharges
            }
            Event::AgentAdmitted { .. } => Counter::AgentsAdmitted,
            Event::AgentDispatched { .. } => Counter::AgentsDispatched,
            Event::AgentReported { .. } => Counter::AgentsReported,
            Event::AgentLog { .. } => Counter::LogLines,
            Event::Rejected { .. } => Counter::Rejections,
            Event::TransferRetried { .. } => Counter::TransfersRetried,
            Event::HopSkipped { .. } => Counter::HopsSkipped,
            Event::AgentRecovered { .. } => Counter::AgentsRecovered,
        };
        self.counters.add(c, 1);
    }

    /// Records currently retained (≤ [`Journal::capacity`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.ring.lock().len()).sum()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.ring.lock().is_empty())
    }

    /// Total records evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Every retained record, globally ordered by sequence number.
    pub fn snapshot(&self) -> Vec<Record> {
        let mut all: Vec<Record> = self
            .shards
            .iter()
            .flat_map(|s| s.ring.lock().iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_unstable_by_key(|r| r.seq);
        all
    }

    /// The `n` most recent retained records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Record> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// The aggregate counters.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Shorthand for `counters().get(c)`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }
}

/// A lazily attachable handle to a journal plus the context a proxy needs
/// to emit events about itself ([`crate::proxy::ProxyControl`] holds one).
///
/// The fast path pays one relaxed `AtomicBool` load while detached; the
/// lock is touched only after attachment, which happens at most once, at
/// bind time, before the proxy is handed to the agent.
#[derive(Debug, Default)]
pub struct JournalHook {
    attached: AtomicBool,
    slot: Mutex<Option<(Arc<Journal>, Urn)>>,
}

impl JournalHook {
    /// A detached hook.
    pub fn new() -> Self {
        JournalHook::default()
    }

    /// Attaches `journal`, tagging future events with `resource`.
    pub fn attach(&self, journal: Arc<Journal>, resource: Urn) {
        *self.slot.lock() = Some((journal, resource));
        self.attached.store(true, Ordering::Release);
    }

    /// Runs `f` with the journal and resource name, if attached.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(&Arc<Journal>, &Urn) -> R) -> Option<R> {
        if !self.attached.load(Ordering::Acquire) {
            return None;
        }
        let slot = self.slot.lock();
        slot.as_ref().map(|(j, r)| f(j, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urn(leaf: &str) -> Urn {
        Urn::resource("x.org", [leaf]).unwrap()
    }

    fn reject(detail: &str) -> Event {
        Event::Rejected {
            kind: RejectKind::BadDatagram,
            detail: detail.into(),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_records_ordered() {
        let j = Journal::with_capacity(64);
        for i in 0..10 {
            let seq = j.append_at(i, reject("x"));
            assert_eq!(seq, i);
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.at, i as u64);
        }
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_memory_and_counts_drops() {
        let j = Journal::with_capacity(16);
        assert_eq!(j.capacity(), 16);
        for i in 0..100u64 {
            j.append_at(i, reject("x"));
        }
        assert_eq!(j.len(), 16);
        assert_eq!(j.dropped(), 84);
        assert_eq!(j.counter(Counter::EventsDropped), 84);
        // Single-threaded, round-robin sharding: exactly the newest 16
        // records survive.
        let seqs: Vec<u64> = j.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (84..100).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_event_variants() {
        let j = Journal::new();
        j.append(Event::Audit {
            caller: DomainId(1),
            op: SystemOp::MutateRegistry,
            allowed: true,
        });
        j.append(Event::Audit {
            caller: DomainId(1),
            op: SystemOp::MutateDomainDatabase,
            allowed: false,
        });
        j.append(Event::MeterCharge {
            resource: urn("r"),
            holder: DomainId(1),
            method: "get".into(),
            amount: 7,
        });
        j.append(Event::ProxyGrant {
            resource: urn("r"),
            holder: DomainId(1),
        });
        assert_eq!(j.counter(Counter::AuditAllowed), 1);
        assert_eq!(j.counter(Counter::AuditDenied), 1);
        assert_eq!(j.counter(Counter::MeterCharges), 1);
        assert_eq!(j.counter(Counter::ChargeUnits), 7);
        assert_eq!(j.counter(Counter::ProxyGrants), 1);
        assert_eq!(j.counter(Counter::EventsAppended), 4);
    }

    #[test]
    fn severity_classification() {
        assert_eq!(reject("x").severity(), Severity::Security);
        assert_eq!(
            Event::Audit {
                caller: DomainId(1),
                op: SystemOp::MutateRegistry,
                allowed: false
            }
            .severity(),
            Severity::Security
        );
        assert_eq!(
            Event::AgentLog {
                agent: Urn::agent("x.org", ["a"]).unwrap(),
                text: "hi".into()
            }
            .severity(),
            Severity::Info
        );
        assert_eq!(
            Event::ProxyExpiry {
                resource: urn("r"),
                holder: DomainId(1),
                not_after: 5
            }
            .severity(),
            Severity::Warn
        );
    }

    #[test]
    fn prometheus_snapshot_has_one_line_per_counter() {
        let j = Journal::new();
        j.append(reject("x"));
        let text = j.counters().snapshot();
        assert_eq!(text.lines().count(), Counter::ALL.len());
        assert!(text.contains("ajanta_rejections_total 1\n"));
        assert!(text.contains("ajanta_journal_events_total 1\n"));
        // Every exported name is unique.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn clock_stamps_appends() {
        let t = Arc::new(AtomicU64::new(42));
        let t2 = Arc::clone(&t);
        let j = Journal::new().with_clock(move || t2.load(Ordering::Relaxed));
        j.append(reject("a"));
        t.store(99, Ordering::Relaxed);
        j.append(reject("b"));
        let snap = j.snapshot();
        assert_eq!(snap[0].at, 42);
        assert_eq!(snap[1].at, 99);
    }

    #[test]
    fn recent_returns_tail() {
        let j = Journal::new();
        for i in 0..10 {
            j.append_at(i, reject("x"));
        }
        let tail = j.recent(3);
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), [7, 8, 9]);
    }

    #[test]
    fn hook_detached_is_a_noop() {
        let hook = JournalHook::new();
        assert_eq!(hook.with(|_, _| 1), None);
        let j = Arc::new(Journal::new());
        hook.attach(Arc::clone(&j), urn("r"));
        assert_eq!(hook.with(|_, r| r.leaf().to_string()), Some("r".into()));
    }
}
