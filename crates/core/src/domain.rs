//! Protection domains and the domain database (paper Section 5.3).
//!
//! Java identifies an agent's protection domain by its thread group; here
//! every executing context carries an explicit [`DomainId`] with the same
//! observable semantics — a context in one domain cannot act as another.
//! Domain 0 is reserved for the **server domain**.
//!
//! *"The agent server maintains a domain database. For each agent, it
//! stores several items of information including its thread-group, owner,
//! creator, and home-site address. It also includes access authorization
//! for various server resources, usage limits and current usage. If the
//! agent is currently granted access to any server resources, then
//! information about the binding objects is also maintained here. This
//! database can be updated only by a thread executing in the server's
//! protection domain."*

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ajanta_naming::Urn;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::registry::key_hash;
use crate::rights::Rights;

/// Lock shards for the two indices. Sequential domain ids spread evenly by
/// simple modulo; agent URNs by hash.
const SHARDS: usize = 16;

/// A protection-domain identifier. Domain 0 is the server's own domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainId(pub u64);

impl DomainId {
    /// The server's own protection domain.
    pub const SERVER: DomainId = DomainId(0);

    /// True for the server domain.
    pub fn is_server(self) -> bool {
        self == Self::SERVER
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_server() {
            f.write_str("domain[server]")
        } else {
            write!(f, "domain[{}]", self.0)
        }
    }
}

/// Per-agent resource quotas, enforced by the runtime's interpreter limits
/// and accounted here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageLimits {
    /// Instruction-fuel budget for the agent's whole stay.
    pub fuel: u64,
    /// Byte-allocation budget.
    pub alloc_bytes: u64,
    /// Maximum resource bindings (live proxies) at once.
    pub max_bindings: usize,
}

impl Default for UsageLimits {
    fn default() -> Self {
        UsageLimits {
            fuel: 100_000_000,
            alloc_bytes: 256 << 20,
            max_bindings: 64,
        }
    }
}

/// Current usage, updated by the server as the agent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Usage {
    /// Fuel consumed so far.
    pub fuel: u64,
    /// Bytes allocated so far.
    pub alloc_bytes: u64,
    /// Live resource bindings.
    pub bindings: usize,
}

/// Everything the server knows about one hosted agent.
#[derive(Debug, Clone)]
pub struct AgentRecord {
    /// The agent's global name.
    pub agent: Urn,
    /// Its protection domain (the thread-group analogue).
    pub domain: DomainId,
    /// The owning principal.
    pub owner: Urn,
    /// The creating principal.
    pub creator: Urn,
    /// Home-site address for status reports.
    pub home: Urn,
    /// Access authorization for server resources, as granted by the
    /// server's policy intersected with the credentials' delegation.
    pub authorization: Rights,
    /// Quotas for this agent.
    pub limits: UsageLimits,
    /// Consumption so far.
    pub usage: Usage,
    /// Names of resources this agent currently holds proxies to
    /// ("information about the binding objects").
    pub bindings: Vec<Urn>,
}

/// Why a domain-database operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// Only the server domain may mutate the database.
    NotServerDomain(DomainId),
    /// No record for this domain.
    UnknownDomain(DomainId),
    /// No record for this agent name.
    UnknownAgent(Urn),
    /// The agent name is already registered.
    DuplicateAgent(Urn),
    /// The operation would exceed a usage limit.
    QuotaExceeded {
        /// Which quota ("fuel", "alloc", "bindings").
        what: &'static str,
        /// The configured limit.
        limit: u64,
        /// The value the operation would have reached.
        requested: u64,
    },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::NotServerDomain(d) => {
                write!(f, "{d} may not update the domain database")
            }
            DomainError::UnknownDomain(d) => write!(f, "no record for {d}"),
            DomainError::UnknownAgent(a) => write!(f, "no record for agent {a}"),
            DomainError::DuplicateAgent(a) => write!(f, "agent already registered: {a}"),
            DomainError::QuotaExceeded {
                what,
                limit,
                requested,
            } => write!(f, "{what} quota exceeded: {requested} > {limit}"),
        }
    }
}

impl std::error::Error for DomainError {}

/// The server's domain database.
///
/// Every mutating method takes the **caller's** domain and refuses
/// non-server callers — the paper's "can be updated only by a thread
/// executing in the server's protection domain" rule, enforced in the API
/// rather than by convention.
///
/// The database is internally sharded: records are spread over [`SHARDS`]
/// independently locked maps keyed by domain id (with a parallel
/// agent-name → domain index sharded by URN hash), and the id allocator is
/// an atomic. All methods take `&self`, so many server worker threads can
/// admit, charge and evict concurrently without funneling through one
/// database-wide lock — the contention that capped agent throughput when
/// the whole database sat behind a single `Mutex`.
///
/// Lookups return **clones** of the record: a snapshot, consistent at read
/// time, that stays valid after the shard lock is released.
#[derive(Debug)]
pub struct DomainDatabase {
    /// Domain id → record, sharded by `id % SHARDS` (ids are sequential,
    /// so this spreads perfectly).
    by_domain: [RwLock<HashMap<DomainId, AgentRecord>>; SHARDS],
    /// Agent name → domain id, sharded by URN hash.
    by_agent: [RwLock<HashMap<Urn, DomainId>>; SHARDS],
    next_domain: AtomicU64,
}

impl Default for DomainDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl DomainDatabase {
    /// An empty database. Domain ids start at 1 (0 is the server).
    pub fn new() -> Self {
        DomainDatabase {
            by_domain: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            by_agent: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            next_domain: AtomicU64::new(1),
        }
    }

    fn domain_shard(&self, domain: DomainId) -> &RwLock<HashMap<DomainId, AgentRecord>> {
        &self.by_domain[domain.0 as usize % SHARDS]
    }

    fn agent_shard(&self, agent: &Urn) -> &RwLock<HashMap<Urn, DomainId>> {
        &self.by_agent[key_hash(agent) % SHARDS]
    }

    fn require_server(caller: DomainId) -> Result<(), DomainError> {
        if caller.is_server() {
            Ok(())
        } else {
            Err(DomainError::NotServerDomain(caller))
        }
    }

    /// Creates a fresh protection domain for an arriving agent and records
    /// it. Server-domain only.
    ///
    /// The name index entry is claimed first (one shard lock, which also
    /// performs the duplicate check), then the record is inserted into its
    /// domain shard; the two locks are never held together, so admissions
    /// on different shards proceed fully in parallel. A reader racing an
    /// in-flight admission may see the name mapped before the record
    /// lands; [`DomainDatabase::record_of`] treats that window as absent.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &self,
        caller: DomainId,
        agent: Urn,
        owner: Urn,
        creator: Urn,
        home: Urn,
        authorization: Rights,
        limits: UsageLimits,
    ) -> Result<DomainId, DomainError> {
        Self::require_server(caller)?;
        let domain = {
            let mut names = self.agent_shard(&agent).write();
            if names.contains_key(&agent) {
                return Err(DomainError::DuplicateAgent(agent));
            }
            let domain = DomainId(self.next_domain.fetch_add(1, Ordering::Relaxed));
            names.insert(agent.clone(), domain);
            domain
        };
        self.domain_shard(domain).write().insert(
            domain,
            AgentRecord {
                agent,
                domain,
                owner,
                creator,
                home,
                authorization,
                limits,
                usage: Usage::default(),
                bindings: Vec::new(),
            },
        );
        Ok(domain)
    }

    /// Removes a departing/terminated agent. Server-domain only. By the
    /// time this returns, both indices are clear and the agent's name may
    /// be re-admitted.
    pub fn evict(&self, caller: DomainId, domain: DomainId) -> Result<AgentRecord, DomainError> {
        Self::require_server(caller)?;
        let record = self
            .domain_shard(domain)
            .write()
            .remove(&domain)
            .ok_or(DomainError::UnknownDomain(domain))?;
        self.agent_shard(&record.agent)
            .write()
            .remove(&record.agent);
        Ok(record)
    }

    /// Looks up by domain (read-only; any caller — reads are not
    /// restricted, only updates are). Returns a snapshot.
    pub fn record(&self, domain: DomainId) -> Option<AgentRecord> {
        self.domain_shard(domain).read().get(&domain).cloned()
    }

    /// Looks up by agent name. Returns a snapshot.
    pub fn record_of(&self, agent: &Urn) -> Option<AgentRecord> {
        let domain = self.domain_of(agent)?;
        self.record(domain)
    }

    /// The domain hosting `agent`, if present.
    pub fn domain_of(&self, agent: &Urn) -> Option<DomainId> {
        self.agent_shard(agent).read().get(agent).copied()
    }

    /// Number of resident agents.
    pub fn len(&self) -> usize {
        self.by_domain.iter().map(|s| s.read().len()).sum()
    }

    /// True when no agents are resident.
    pub fn is_empty(&self) -> bool {
        self.by_domain.iter().all(|s| s.read().is_empty())
    }

    /// Snapshots all records (status queries from owners, Section 4).
    /// Shards are visited in turn, so the result is consistent per shard
    /// but not across concurrent mutations — fine for status reporting.
    pub fn iter(&self) -> impl Iterator<Item = AgentRecord> {
        let mut records: Vec<AgentRecord> = self
            .by_domain
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        records.sort_by_key(|r| r.domain);
        records.into_iter()
    }

    /// Applies `f` to one record under its shard's write lock.
    fn update<T>(
        &self,
        caller: DomainId,
        domain: DomainId,
        f: impl FnOnce(&mut AgentRecord) -> Result<T, DomainError>,
    ) -> Result<T, DomainError> {
        Self::require_server(caller)?;
        let mut shard = self.domain_shard(domain).write();
        let rec = shard
            .get_mut(&domain)
            .ok_or(DomainError::UnknownDomain(domain))?;
        f(rec)
    }

    /// Charges fuel against an agent's quota. Server-domain only.
    pub fn charge_fuel(
        &self,
        caller: DomainId,
        domain: DomainId,
        fuel: u64,
    ) -> Result<(), DomainError> {
        self.update(caller, domain, |rec| {
            let new = rec.usage.fuel.saturating_add(fuel);
            if new > rec.limits.fuel {
                return Err(DomainError::QuotaExceeded {
                    what: "fuel",
                    limit: rec.limits.fuel,
                    requested: new,
                });
            }
            rec.usage.fuel = new;
            Ok(())
        })
    }

    /// Records a new resource binding. Server-domain only.
    pub fn add_binding(
        &self,
        caller: DomainId,
        domain: DomainId,
        resource: Urn,
    ) -> Result<(), DomainError> {
        self.update(caller, domain, |rec| {
            if rec.bindings.len() + 1 > rec.limits.max_bindings {
                return Err(DomainError::QuotaExceeded {
                    what: "bindings",
                    limit: rec.limits.max_bindings as u64,
                    requested: rec.bindings.len() as u64 + 1,
                });
            }
            rec.bindings.push(resource);
            rec.usage.bindings = rec.bindings.len();
            Ok(())
        })
    }

    /// Drops a recorded binding (e.g. after revocation). Server-domain
    /// only. Returns whether the binding was present.
    pub fn remove_binding(
        &self,
        caller: DomainId,
        domain: DomainId,
        resource: &Urn,
    ) -> Result<bool, DomainError> {
        self.update(caller, domain, |rec| {
            let before = rec.bindings.len();
            rec.bindings.retain(|r| r != resource);
            rec.usage.bindings = rec.bindings.len();
            Ok(rec.bindings.len() != before)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> (Urn, Urn, Urn, Urn) {
        (
            Urn::agent("umn.edu", ["a1"]).unwrap(),
            Urn::owner("umn.edu", ["alice"]).unwrap(),
            Urn::owner("umn.edu", ["launcher"]).unwrap(),
            Urn::server("umn.edu", ["home"]).unwrap(),
        )
    }

    fn admit(db: &DomainDatabase) -> DomainId {
        let (a, o, c, h) = names();
        db.admit(
            DomainId::SERVER,
            a,
            o,
            c,
            h,
            Rights::all(),
            UsageLimits::default(),
        )
        .unwrap()
    }

    #[test]
    fn admit_assigns_distinct_nonserver_domains() {
        let db = DomainDatabase::new();
        let d1 = admit(&db);
        let (_, o, c, h) = names();
        let a2 = Urn::agent("umn.edu", ["a2"]).unwrap();
        let d2 = db
            .admit(
                DomainId::SERVER,
                a2,
                o,
                c,
                h,
                Rights::none(),
                UsageLimits::default(),
            )
            .unwrap();
        assert_ne!(d1, d2);
        assert!(!d1.is_server());
        assert!(!d2.is_server());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn only_server_domain_may_mutate() {
        let db = DomainDatabase::new();
        let d = admit(&db);
        let (a2, o, c, h) = names();
        let agent_domain = d;

        assert_eq!(
            db.admit(
                agent_domain,
                a2.child("evil").unwrap(),
                o,
                c,
                h,
                Rights::all(),
                UsageLimits::default()
            )
            .unwrap_err(),
            DomainError::NotServerDomain(agent_domain)
        );
        assert!(matches!(
            db.charge_fuel(agent_domain, d, 1),
            Err(DomainError::NotServerDomain(_))
        ));
        assert!(matches!(
            db.add_binding(agent_domain, d, names().0),
            Err(DomainError::NotServerDomain(_))
        ));
        assert!(matches!(
            db.evict(agent_domain, d),
            Err(DomainError::NotServerDomain(_))
        ));
        // Reads are open.
        assert!(db.record(d).is_some());
    }

    #[test]
    fn duplicate_agents_rejected() {
        let db = DomainDatabase::new();
        admit(&db);
        let (a, o, c, h) = names();
        assert_eq!(
            db.admit(
                DomainId::SERVER,
                a.clone(),
                o,
                c,
                h,
                Rights::none(),
                UsageLimits::default()
            )
            .unwrap_err(),
            DomainError::DuplicateAgent(a)
        );
    }

    #[test]
    fn lookup_by_name_and_domain_agree() {
        let db = DomainDatabase::new();
        let d = admit(&db);
        let (a, ..) = names();
        assert_eq!(db.domain_of(&a), Some(d));
        assert_eq!(db.record_of(&a).unwrap().domain, d);
        assert_eq!(db.record(d).unwrap().agent, a);
    }

    #[test]
    fn evict_frees_both_indices() {
        let db = DomainDatabase::new();
        let d = admit(&db);
        let (a, ..) = names();
        let rec = db.evict(DomainId::SERVER, d).unwrap();
        assert_eq!(rec.agent, a);
        assert!(db.is_empty());
        assert_eq!(db.domain_of(&a), None);
        assert!(matches!(
            db.evict(DomainId::SERVER, d),
            Err(DomainError::UnknownDomain(_))
        ));
        // The name can be reused after eviction (re-arrival).
        admit(&db);
    }

    #[test]
    fn fuel_quota_enforced() {
        let db = DomainDatabase::new();
        let (a, o, c, h) = names();
        let d = db
            .admit(
                DomainId::SERVER,
                a,
                o,
                c,
                h,
                Rights::all(),
                UsageLimits {
                    fuel: 100,
                    ..Default::default()
                },
            )
            .unwrap();
        db.charge_fuel(DomainId::SERVER, d, 60).unwrap();
        db.charge_fuel(DomainId::SERVER, d, 40).unwrap();
        let err = db.charge_fuel(DomainId::SERVER, d, 1).unwrap_err();
        assert_eq!(
            err,
            DomainError::QuotaExceeded {
                what: "fuel",
                limit: 100,
                requested: 101
            }
        );
        assert_eq!(db.record(d).unwrap().usage.fuel, 100);
    }

    #[test]
    fn binding_quota_and_bookkeeping() {
        let db = DomainDatabase::new();
        let (a, o, c, h) = names();
        let d = db
            .admit(
                DomainId::SERVER,
                a,
                o,
                c,
                h,
                Rights::all(),
                UsageLimits {
                    max_bindings: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        let r1 = Urn::resource("x.org", ["r1"]).unwrap();
        let r2 = Urn::resource("x.org", ["r2"]).unwrap();
        let r3 = Urn::resource("x.org", ["r3"]).unwrap();
        db.add_binding(DomainId::SERVER, d, r1.clone()).unwrap();
        db.add_binding(DomainId::SERVER, d, r2).unwrap();
        assert!(matches!(
            db.add_binding(DomainId::SERVER, d, r3),
            Err(DomainError::QuotaExceeded {
                what: "bindings",
                ..
            })
        ));
        assert_eq!(db.record(d).unwrap().usage.bindings, 2);
        assert!(db.remove_binding(DomainId::SERVER, d, &r1).unwrap());
        assert!(!db.remove_binding(DomainId::SERVER, d, &r1).unwrap());
        assert_eq!(db.record(d).unwrap().usage.bindings, 1);
    }

    #[test]
    fn iter_supports_status_queries() {
        let db = DomainDatabase::new();
        admit(&db);
        let owners: Vec<_> = db.iter().map(|r| r.owner.clone()).collect();
        assert_eq!(owners.len(), 1);
        assert_eq!(owners[0], names().1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DomainId::SERVER.to_string(), "domain[server]");
        assert_eq!(DomainId(3).to_string(), "domain[3]");
    }
}
