//! The paper's running example: a bounded buffer resource with a
//! hand-written proxy — Figs. 4 and 5, line for line.
//!
//! Fig. 4 defines a `Buffer` interface extending `Resource` with
//! synchronized `get`/`put`, implemented by `BufferImpl extends
//! ResourceImpl implements Buffer, AccessProtocol`. Fig. 5 shows
//! `BufferProxy implements Buffer` holding a **private** reference to the
//! underlying buffer and checking `isEnabled(method)` before each
//! pass-through, throwing a security exception otherwise.
//!
//! This module keeps both faces of the design:
//!
//! * [`Buffer`] / [`BoundedBuffer`] / [`BufferProxy`] — the statically
//!   typed mirror of the figures (Rust privacy stands in for Java
//!   encapsulation: `BufferProxy.inner` is not public, so holding a proxy
//!   gives no path to the raw buffer);
//! * `impl Resource for BoundedBuffer` — the dynamic face used by VM
//!   agents through the registry, identical semantics.

use std::collections::VecDeque;
use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_vm::{Ty, Value};
use parking_lot::Mutex;

use crate::domain::DomainId;
use crate::proxy::{AccessError, Meter, ProxyControl, ResourceProxy};
use crate::resource::{
    AccessProtocol, MethodId, MethodSpec, MethodTable, Requester, Resource, ResourceError,
};

/// The application-defined buffer interface (paper Fig. 4's `Buffer`).
pub trait Buffer: Send + Sync {
    /// Removes and returns the oldest item;
    /// [`ResourceError::WouldBlock`] when empty.
    fn get(&self) -> Result<Value, ResourceError>;
    /// Appends an item; [`ResourceError::WouldBlock`] when full.
    fn put(&self, item: Value) -> Result<(), ResourceError>;
    /// Current number of items.
    fn size(&self) -> usize;
}

/// The implementation (paper Fig. 4's `BufferImpl`).
pub struct BoundedBuffer {
    name: Urn,
    owner: Urn,
    capacity: usize,
    /// Interned method universe, built once at construction (Fig. 6
    /// step 4 happens against this, not against per-call strings).
    table: Arc<MethodTable>,
    items: Mutex<VecDeque<Value>>,
}

impl BoundedBuffer {
    /// A buffer holding up to `capacity` items.
    pub fn new(name: Urn, owner: Urn, capacity: usize) -> Arc<Self> {
        assert!(capacity > 0, "capacity must be positive");
        Arc::new(BoundedBuffer {
            name,
            owner,
            capacity,
            table: MethodTable::new(["get", "put", "size"]),
            items: Mutex::new(VecDeque::with_capacity(capacity)),
        })
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Buffer for BoundedBuffer {
    fn get(&self) -> Result<Value, ResourceError> {
        self.items
            .lock()
            .pop_front()
            .ok_or(ResourceError::WouldBlock)
    }

    fn put(&self, item: Value) -> Result<(), ResourceError> {
        let mut items = self.items.lock();
        if items.len() >= self.capacity {
            return Err(ResourceError::WouldBlock);
        }
        items.push_back(item);
        Ok(())
    }

    fn size(&self) -> usize {
        self.items.lock().len()
    }
}

impl Resource for BoundedBuffer {
    fn name(&self) -> &Urn {
        &self.name
    }
    fn owner(&self) -> &Urn {
        &self.owner
    }
    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("get", [], Ty::Bytes),
            MethodSpec::new("put", [Ty::Bytes], Ty::Int),
            MethodSpec::new("size", [], Ty::Int),
        ]
    }
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
        self.check_args(method, args)?;
        match method {
            "get" => Buffer::get(self),
            "put" => {
                Buffer::put(self, args[0].clone())?;
                Ok(Value::Int(0))
            }
            "size" => Ok(Value::Int(self.size() as i64)),
            other => Err(ResourceError::NoSuchMethod(other.into())),
        }
    }
    fn method_table(&self) -> Arc<MethodTable> {
        Arc::clone(&self.table)
    }
}

impl AccessProtocol for BoundedBuffer {
    /// The `getProxy` of Fig. 7: enables exactly the methods the
    /// requester's effective rights permit on this buffer.
    fn get_proxy(
        self: Arc<Self>,
        requester: &Requester,
        _now: u64,
    ) -> Result<ResourceProxy, AccessError> {
        // Bind-time resolution: rights are evaluated against the interned
        // table once, yielding MethodIds — no strings survive into the
        // invocation path.
        let enabled: Vec<MethodId> = self
            .table
            .iter()
            .filter(|(_, name)| requester.rights.permits(&self.name, name))
            .map(|(id, _)| id)
            .collect();
        if enabled.is_empty() {
            return Err(AccessError::PolicyDenied {
                resource: self.name.clone(),
                reason: format!("agent {} has no rights on this buffer", requester.agent),
            });
        }
        let control = ProxyControl::new(
            requester.domain,
            [],
            Arc::clone(&self.table),
            enabled,
            None,
            Meter::off(),
        );
        Ok(ResourceProxy::new(self, control))
    }
}

/// The hand-written typed proxy (paper Fig. 5's `BufferProxy`).
///
/// ```java
/// public class BufferProxy implements Buffer {
///     private Buffer ref;                      // <- `inner`, private
///     public synchronized BufItem get() {
///         if (isEnabled("get")) return ref.get();
///         else /* throw a security exception */
///     }
/// }
/// ```
pub struct BufferProxy {
    /// "ref is a reference to the underlying resource" — private, so the
    /// agent holding the proxy cannot bypass it (Java encapsulation ≙
    /// Rust privacy).
    inner: Arc<BoundedBuffer>,
    control: Arc<ProxyControl>,
    /// The domain on whose behalf typed calls are made. A typed proxy is
    /// bound to its holder at creation — there is no caller parameter to
    /// forge.
    holder: DomainId,
    /// Method ids resolved once at construction (the bind-time step of
    /// Fig. 6): every typed call below is atomics-only, no name lookup.
    m_get: MethodId,
    m_put: MethodId,
    m_size: MethodId,
}

impl BufferProxy {
    /// Creates a typed proxy. `control` carries the enabled set, expiry,
    /// metering and revocation state exactly as for dynamic proxies.
    pub fn new(inner: Arc<BoundedBuffer>, control: Arc<ProxyControl>) -> Self {
        let holder = control.holder();
        let table = control.table();
        let m_get = table.id("get").expect("buffer table has get");
        let m_put = table.id("put").expect("buffer table has put");
        let m_size = table.id("size").expect("buffer table has size");
        BufferProxy {
            inner,
            control,
            holder,
            m_get,
            m_put,
            m_size,
        }
    }

    /// `get()`, guarded: the Fig. 5 `isEnabled("get")` check generalized
    /// to the full check chain (revocation, expiry, confinement,
    /// enablement).
    pub fn get(&self, now: u64) -> Result<Value, AccessError> {
        self.control.check_id(self.holder, self.m_get, now)?;
        let v = self.inner.get()?;
        self.control.record_use_id(self.m_get, 0);
        Ok(v)
    }

    /// `put(item)`, guarded.
    pub fn put(&self, item: Value, now: u64) -> Result<(), AccessError> {
        self.control.check_id(self.holder, self.m_put, now)?;
        self.inner.put(item)?;
        self.control.record_use_id(self.m_put, 0);
        Ok(())
    }

    /// `size()`, guarded.
    pub fn size(&self, now: u64) -> Result<usize, AccessError> {
        self.control.check_id(self.holder, self.m_size, now)?;
        let n = self.inner.size();
        self.control.record_use_id(self.m_size, 0);
        Ok(n)
    }

    /// The control block, for the resource manager.
    pub fn control(&self) -> &Arc<ProxyControl> {
        &self.control
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(cap: usize) -> Arc<BoundedBuffer> {
        BoundedBuffer::new(
            Urn::resource("acme.com", ["buffer"]).unwrap(),
            Urn::owner("acme.com", ["admin"]).unwrap(),
            cap,
        )
    }

    const AGENT: DomainId = DomainId(4);

    fn typed_proxy(buf: &Arc<BoundedBuffer>, enabled: &[&str]) -> BufferProxy {
        let control = ProxyControl::new_named(
            AGENT,
            [],
            buf.method_table(),
            enabled.iter().copied(),
            None,
            Meter::off(),
        );
        BufferProxy::new(Arc::clone(buf), control)
    }

    #[test]
    fn fifo_semantics() {
        let b = buffer(3);
        Buffer::put(&*b, Value::Int(1)).unwrap();
        Buffer::put(&*b, Value::Int(2)).unwrap();
        assert_eq!(Buffer::get(&*b).unwrap(), Value::Int(1));
        assert_eq!(Buffer::get(&*b).unwrap(), Value::Int(2));
        assert_eq!(Buffer::get(&*b), Err(ResourceError::WouldBlock));
    }

    #[test]
    fn capacity_bound_enforced() {
        let b = buffer(2);
        Buffer::put(&*b, Value::Int(1)).unwrap();
        Buffer::put(&*b, Value::Int(2)).unwrap();
        assert_eq!(
            Buffer::put(&*b, Value::Int(3)),
            Err(ResourceError::WouldBlock)
        );
        assert_eq!(b.size(), 2);
        // Draining frees a slot.
        Buffer::get(&*b).unwrap();
        Buffer::put(&*b, Value::Int(3)).unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = buffer(0);
    }

    #[test]
    fn typed_proxy_mirrors_figure_5() {
        let b = buffer(4);
        let p = typed_proxy(&b, &["get", "put"]);
        p.put(Value::str("x"), 0).unwrap();
        assert_eq!(p.get(0).unwrap(), Value::str("x"));
        // "size" was not enabled: security exception.
        assert_eq!(p.size(0), Err(AccessError::MethodDisabled("size".into())));
    }

    #[test]
    fn typed_proxy_respects_revocation_and_expiry() {
        let b = buffer(4);
        let p = typed_proxy(&b, &["get", "put", "size"]);
        p.control().set_expiry(DomainId::SERVER, Some(10)).unwrap();
        p.put(Value::Int(1), 10).unwrap();
        assert!(matches!(p.get(11), Err(AccessError::Expired { .. })));
        p.control().set_expiry(DomainId::SERVER, None).unwrap();
        p.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(p.get(0), Err(AccessError::Revoked));
    }

    #[test]
    fn typed_and_dynamic_paths_share_the_buffer() {
        let b = buffer(4);
        // Dynamic path (what VM agents use).
        b.invoke("put", &[Value::str("via-dynamic")]).unwrap();
        // Typed path sees the same state.
        let p = typed_proxy(&b, &["get"]);
        assert_eq!(p.get(0).unwrap(), Value::str("via-dynamic"));
    }

    #[test]
    fn dynamic_get_proxy_filters_methods_by_rights() {
        use crate::rights::Rights;
        let b = buffer(4);
        let requester = Requester {
            agent: Urn::agent("umn.edu", ["a"]).unwrap(),
            owner: Urn::owner("umn.edu", ["alice"]).unwrap(),
            domain: AGENT,
            rights: Rights::none().grant_method(b.name().clone(), "put"),
        };
        let proxy = Arc::clone(&b).get_proxy(&requester, 0).unwrap();
        proxy.invoke(AGENT, "put", &[Value::str("x")], 0).unwrap();
        assert_eq!(
            proxy.invoke(AGENT, "get", &[], 0),
            Err(AccessError::MethodDisabled("get".into()))
        );
    }

    #[test]
    fn dynamic_get_proxy_denies_rightless_agents() {
        use crate::rights::Rights;
        let b = buffer(4);
        let requester = Requester {
            agent: Urn::agent("umn.edu", ["a"]).unwrap(),
            owner: Urn::owner("umn.edu", ["alice"]).unwrap(),
            domain: AGENT,
            rights: Rights::none(),
        };
        assert!(matches!(
            Arc::clone(&b).get_proxy(&requester, 0),
            Err(AccessError::PolicyDenied { .. })
        ));
    }

    #[test]
    fn dynamic_put_type_checked() {
        let b = buffer(4);
        assert!(matches!(
            b.invoke("put", &[Value::Int(3)]),
            Err(ResourceError::BadArguments { .. })
        ));
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_count() {
        let b = buffer(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..100 {
                        while Buffer::put(&*b, Value::Int(t * 1000 + i)).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut got = 0;
            while got < 2 * 100 {
                if Buffer::get(&*b).is_ok() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        // 400 produced, 200 consumed.
        assert_eq!(b.size(), 200);
    }
}
