//! The rights algebra: what an agent may do to which resources.
//!
//! The paper requires that *"the creator may delegate to the agent only a
//! limited set of privileges"* and that a forwarding server may grant an
//! agent *"some additional privileges or restrict some of its existing
//! ones"* (Section 5.2). That calls for a small algebra with a crucial
//! law: **composition along a delegation chain can only shrink the
//! permitted set** — enforced here by intersection, and property-tested in
//! `tests/properties.rs`.
//!
//! A [`Rights`] value is a set of grants `(scope, method-pattern)`:
//! * scope — an exact resource name or a whole name subtree;
//! * method pattern — an exact method name or the `*` wildcard.

use ajanta_naming::Urn;
use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire, WireError};
use serde::{Deserialize, Serialize};

/// Which resources a grant covers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Exactly this resource.
    Exact(Urn),
    /// Every resource whose name lies within this subtree
    /// (see [`Urn::is_within`]).
    Subtree(Urn),
}

impl Scope {
    /// Does this scope cover `resource`?
    pub fn covers(&self, resource: &Urn) -> bool {
        match self {
            Scope::Exact(u) => u == resource,
            Scope::Subtree(root) => resource.is_within(root),
        }
    }

    /// Is every resource covered by `self` also covered by `other`?
    pub fn within(&self, other: &Scope) -> bool {
        match (self, other) {
            (Scope::Exact(a), Scope::Exact(b)) => a == b,
            (Scope::Exact(a), Scope::Subtree(b)) => a.is_within(b),
            (Scope::Subtree(a), Scope::Subtree(b)) => a.is_within(b),
            // A subtree is never inside a single name (the subtree always
            // contains names longer than the exact one).
            (Scope::Subtree(_), Scope::Exact(_)) => false,
        }
    }
}

impl Wire for Scope {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Scope::Exact(u) => {
                e.put_u8(0);
                u.encode(e);
            }
            Scope::Subtree(u) => {
                e.put_u8(1);
                u.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(Scope::Exact(Urn::decode(d)?)),
            1 => Ok(Scope::Subtree(Urn::decode(d)?)),
            tag => Err(WireError::BadTag { ty: "Scope", tag }),
        }
    }
}

/// Which methods a grant covers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MethodPattern {
    /// Any method on the covered resources.
    Any,
    /// Exactly this method name.
    Exact(String),
}

impl MethodPattern {
    /// Does the pattern match `method`?
    pub fn matches(&self, method: &str) -> bool {
        match self {
            MethodPattern::Any => true,
            MethodPattern::Exact(m) => m == method,
        }
    }

    /// Is every method matched by `self` also matched by `other`?
    pub fn within(&self, other: &MethodPattern) -> bool {
        match (self, other) {
            (_, MethodPattern::Any) => true,
            (MethodPattern::Any, MethodPattern::Exact(_)) => false,
            (MethodPattern::Exact(a), MethodPattern::Exact(b)) => a == b,
        }
    }
}

impl Wire for MethodPattern {
    fn encode(&self, e: &mut Encoder) {
        match self {
            MethodPattern::Any => e.put_u8(0),
            MethodPattern::Exact(m) => {
                e.put_u8(1);
                e.put_str(m);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(MethodPattern::Any),
            1 => Ok(MethodPattern::Exact(d.get_str()?)),
            tag => Err(WireError::BadTag {
                ty: "MethodPattern",
                tag,
            }),
        }
    }
}

/// One grant: a scope and a method pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Grant {
    /// Resources covered.
    pub scope: Scope,
    /// Methods covered on those resources.
    pub methods: MethodPattern,
}

impl Grant {
    /// Does this grant permit `method` on `resource`?
    pub fn permits(&self, resource: &Urn, method: &str) -> bool {
        self.scope.covers(resource) && self.methods.matches(method)
    }

    /// Is everything permitted by `self` also permitted by `other`?
    pub fn within(&self, other: &Grant) -> bool {
        self.scope.within(&other.scope) && self.methods.within(&other.methods)
    }
}

impl Wire for Grant {
    fn encode(&self, e: &mut Encoder) {
        self.scope.encode(e);
        self.methods.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Grant {
            scope: Scope::decode(d)?,
            methods: MethodPattern::decode(d)?,
        })
    }
}

/// A set of grants. Semantically a union: an action is permitted when any
/// grant permits it. The distinguished **universal** set (see
/// [`Rights::all`]) permits everything and is the identity of
/// [`Rights::intersect`] — a grant covering every authority cannot be
/// expressed as one subtree, so "all" is a marker, not a grant list.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Rights {
    universal: bool,
    grants: Vec<Grant>,
}

impl Rights {
    /// The empty rights set (permits nothing).
    pub fn none() -> Self {
        Rights::default()
    }

    /// Rights permitting **everything** — the identity of intersection,
    /// used as the starting point of a delegation chain.
    pub fn all() -> Self {
        Rights {
            universal: true,
            grants: vec![],
        }
    }

    /// One exact-resource, any-method grant.
    pub fn on_resource(resource: Urn) -> Self {
        Rights::none().grant(Scope::Exact(resource), MethodPattern::Any)
    }

    /// One subtree, any-method grant.
    pub fn on_subtree(root: Urn) -> Self {
        Rights::none().grant(Scope::Subtree(root), MethodPattern::Any)
    }

    /// Adds a grant (builder-style).
    pub fn grant(mut self, scope: Scope, methods: MethodPattern) -> Self {
        self.grants.push(Grant { scope, methods });
        self
    }

    /// Adds an exact-method grant on an exact resource (builder-style).
    pub fn grant_method(self, resource: Urn, method: impl Into<String>) -> Self {
        self.grant(Scope::Exact(resource), MethodPattern::Exact(method.into()))
    }

    /// Does this rights set permit `method` on `resource`?
    pub fn permits(&self, resource: &Urn, method: &str) -> bool {
        self.universal || self.grants.iter().any(|g| g.permits(resource, method))
    }

    /// Union: permits what either side permits.
    pub fn union(&self, other: &Rights) -> Rights {
        if self.universal || other.universal {
            return Rights::all();
        }
        let mut grants = self.grants.clone();
        grants.extend(other.grants.iter().cloned());
        grants.sort();
        grants.dedup();
        Rights {
            grants,
            universal: false,
        }
    }

    /// Intersection — the delegation-restriction operator. The law that
    /// makes delegation safe: `a.intersect(b).permits(r, m)` holds iff
    /// both `a.permits(r, m)` and `b.permits(r, m)` hold.
    pub fn intersect(&self, other: &Rights) -> Rights {
        if self.universal {
            return other.clone();
        }
        if other.universal {
            return self.clone();
        }
        let mut grants = Vec::new();
        for a in &self.grants {
            for b in &other.grants {
                if let Some(g) = intersect_grants(a, b) {
                    grants.push(g);
                }
            }
        }
        grants.sort();
        grants.dedup();
        Rights {
            grants,
            universal: false,
        }
    }

    /// True when no action is permitted. (Conservative: a non-universal
    /// set with grants is "empty" only if it has no grants; overlapping
    /// grant simplification is not attempted.)
    pub fn is_none(&self) -> bool {
        !self.universal && self.grants.is_empty()
    }

    /// True when every action is permitted.
    pub fn is_all(&self) -> bool {
        self.universal
    }

    /// The individual grants (empty for the universal set).
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }
}

fn intersect_grants(a: &Grant, b: &Grant) -> Option<Grant> {
    let scope = intersect_scopes(&a.scope, &b.scope)?;
    let methods = intersect_methods(&a.methods, &b.methods)?;
    Some(Grant { scope, methods })
}

fn intersect_scopes(a: &Scope, b: &Scope) -> Option<Scope> {
    if a.within(b) {
        return Some(a.clone());
    }
    if b.within(a) {
        return Some(b.clone());
    }
    None
}

fn intersect_methods(a: &MethodPattern, b: &MethodPattern) -> Option<MethodPattern> {
    if a.within(b) {
        return Some(a.clone());
    }
    if b.within(a) {
        return Some(b.clone());
    }
    None
}

impl Wire for Rights {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(u8::from(self.universal));
        encode_seq(&self.grants, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let universal = match d.get_u8()? {
            0 => false,
            1 => true,
            tag => return Err(WireError::BadTag { ty: "Rights", tag }),
        };
        Ok(Rights {
            universal,
            grants: decode_seq(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(path: &str) -> Urn {
        Urn::resource("umn.edu", path.split('/')).unwrap()
    }

    #[test]
    fn exact_grant_permits_only_that_pair() {
        let r = Rights::none().grant_method(res("buffer"), "get");
        assert!(r.permits(&res("buffer"), "get"));
        assert!(!r.permits(&res("buffer"), "put"));
        assert!(!r.permits(&res("other"), "get"));
    }

    #[test]
    fn subtree_grant_covers_descendants() {
        let r = Rights::on_subtree(res("catalog"));
        assert!(r.permits(&res("catalog"), "query"));
        assert!(r.permits(&res("catalog/books"), "query"));
        assert!(r.permits(&res("catalog/books/rare"), "buy"));
        assert!(!r.permits(&res("catalogue"), "query")); // sibling, not child
    }

    #[test]
    fn all_and_none_are_extremes() {
        assert!(Rights::all().permits(&res("x"), "anything"));
        assert!(!Rights::none().permits(&res("x"), "anything"));
        assert!(Rights::all().is_all());
        assert!(Rights::none().is_none());
    }

    #[test]
    fn union_permits_either() {
        let a = Rights::on_resource(res("a"));
        let b = Rights::on_resource(res("b"));
        let u = a.union(&b);
        assert!(u.permits(&res("a"), "m"));
        assert!(u.permits(&res("b"), "m"));
        assert!(!u.permits(&res("c"), "m"));
    }

    #[test]
    fn intersect_requires_both() {
        let a = Rights::on_subtree(res("catalog"));
        let b = Rights::none()
            .grant_method(res("catalog/books"), "query")
            .grant_method(res("elsewhere"), "query");
        let i = a.intersect(&b);
        assert!(i.permits(&res("catalog/books"), "query"));
        assert!(!i.permits(&res("catalog/books"), "buy")); // b restricts methods
        assert!(!i.permits(&res("elsewhere"), "query")); // a lacks scope
    }

    #[test]
    fn intersect_with_all_is_identity() {
        let r = Rights::none().grant_method(res("buffer"), "get");
        assert_eq!(Rights::all().intersect(&r), r);
        assert_eq!(r.intersect(&Rights::all()), r);
    }

    #[test]
    fn intersect_with_none_is_none() {
        let r = Rights::on_subtree(res("catalog"));
        assert!(Rights::none().intersect(&r).is_none());
        assert!(r.intersect(&Rights::none()).is_none());
    }

    #[test]
    fn disjoint_scopes_intersect_to_nothing() {
        let a = Rights::on_resource(res("a"));
        let b = Rights::on_resource(res("b"));
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn nested_subtrees_intersect_to_inner() {
        let outer = Rights::on_subtree(res("catalog"));
        let inner = Rights::on_subtree(res("catalog/books"));
        let i = outer.intersect(&inner);
        assert!(i.permits(&res("catalog/books/rare"), "m"));
        assert!(!i.permits(&res("catalog/music"), "m"));
    }

    #[test]
    fn scope_within_rules() {
        let exact = Scope::Exact(res("catalog/books"));
        let sub = Scope::Subtree(res("catalog"));
        assert!(exact.within(&sub));
        assert!(!sub.within(&exact));
        assert!(sub.within(&Scope::Subtree(res("catalog"))));
        assert!(Scope::Exact(res("x")).within(&Scope::Exact(res("x"))));
    }

    #[test]
    fn method_pattern_rules() {
        assert!(MethodPattern::Exact("get".into()).within(&MethodPattern::Any));
        assert!(!MethodPattern::Any.within(&MethodPattern::Exact("get".into())));
        assert!(MethodPattern::Any.matches("whatever"));
        assert!(MethodPattern::Exact("get".into()).matches("get"));
        assert!(!MethodPattern::Exact("get".into()).matches("put"));
    }

    #[test]
    fn wire_roundtrip() {
        for r in [
            Rights::all(),
            Rights::none(),
            Rights::on_subtree(res("catalog")).grant_method(res("buffer"), "get"),
        ] {
            assert_eq!(Rights::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn union_dedups() {
        let a = Rights::on_resource(res("a"));
        let u = a.union(&a);
        assert_eq!(u.grants().len(), 1);
    }
}
