//! **The paper's contribution**: proxy-based protected resource access for
//! mobile agents (Tripathi & Karnik, ICPP 1998, Section 5).
//!
//! An agent server must let visiting — untrusted, mobile — agents use its
//! resources *"only in ways it is authorized to"* while being unable to
//! *"breach system security by accessing resources it is not authorized to
//! use"* (Section 5.2). The design here is the paper's:
//!
//! * [`credentials`] — each agent carries signed, tamper-evident
//!   credentials binding its identity to its owner and creator, with
//!   delegated-rights restrictions and expiry (Section 5.2).
//! * [`rights`] — the rights algebra those restrictions are expressed in:
//!   delegation can only shrink privileges, never grow them.
//! * [`domain`] — protection domains and the server's **domain database**
//!   (Section 5.3): owner, creator, home site, authorizations, usage
//!   limits, current usage, live bindings.
//! * [`monitor`] — the reference monitor mediating system-level
//!   operations (the Java security-manager analogue); deliberately
//!   limited to *"generic protection of system resources"* (Section 5.4),
//!   leaving application-level policy to resources and proxies.
//! * [`resource`] — the `Resource` / `AccessProtocol` interfaces of
//!   Figs. 3 and 7.
//! * [`proxy`] — dynamically created, per-agent proxies (Fig. 5) with
//!   per-method enable/disable, expiry, usage metering and charging,
//!   selective revocation, and identity-based capability confinement
//!   (Section 5.5).
//! * [`registry`] — the resource registry and the six-step dynamic
//!   binding protocol of Fig. 6.
//! * [`policy`] — the server security policy consulted at `get_proxy`
//!   time: rights by principal, group, or name subtree.
//! * [`buffer`] — the paper's running example, a bounded buffer with a
//!   hand-written typed proxy mirroring Figs. 4–5 line for line.
//! * [`proxygen`] — the "simple lexical processing tool" (Section 5.5)
//!   that generates proxies: a [`resource::MethodTable`]-driven generic
//!   proxy plus the [`crate::declare_resource_proxy!`] macro for typed
//!   proxies, both resolving method names to interned
//!   [`resource::MethodId`]s at bind time.
//! * [`telemetry`] — the typed event journal unifying the monitor's
//!   audit log (Section 3.2), proxy metering/accounting (Section 5.5),
//!   and the server's security-event stream into one bounded, sharded,
//!   counter-backed pipeline — now with distributed-trace spans and
//!   lock-free latency histograms for the hot paths.
//! * [`trace`] — causal tour reconstruction: JSONL journal export,
//!   cross-server merge into per-trace span trees, and anomaly scanning
//!   (orphan spans, retry storms, accesses after revocation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod credentials;
pub mod domain;
pub mod monitor;
pub mod policy;
pub mod proxy;
pub mod proxygen;
pub mod registry;
pub mod resource;
pub mod rights;
pub mod telemetry;
pub mod trace;

pub use buffer::{BoundedBuffer, Buffer, BufferProxy};
pub use credentials::{CredentialError, Credentials, CredentialsBuilder, Endorsement};
pub use domain::{AgentRecord, DomainDatabase, DomainError, DomainId, Usage, UsageLimits};
pub use monitor::{AuditEntry, HostMonitor, SystemOp, Violation};
pub use policy::{Groups, PrincipalPattern, SecurityPolicy};
pub use proxy::{
    AccessError, BoundMeter, Meter, MeterMode, MeterReading, ProxyControl, ResourceProxy,
};
pub use proxygen::{Guarded, ProxyPolicy};
pub use registry::{BindError, ResourceRegistry};
pub use resource::{
    AccessProtocol, MethodId, MethodSpec, MethodTable, ProtectedResource, Requester, Resource,
    ResourceError,
};
pub use rights::{Grant, MethodPattern, Rights, Scope};
pub use telemetry::{
    Counter, CounterSet, Event, Histo, HistoPath, HistoSet, HistoSnapshot, Journal, JournalHook,
    Record, RejectKind, Severity, SpanContext, SpanId, SpanKind, TraceId,
};
pub use trace::{scan_anomalies, Anomaly, SpanRec, TraceForest, TraceRecord, TraceTree};

/// Hidden re-export used by [`declare_resource_proxy!`] expansions in
/// downstream crates.
#[doc(hidden)]
pub use ajanta_vm as __vm;
