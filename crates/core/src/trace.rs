//! Causal tour reconstruction from merged telemetry journals.
//!
//! Each server journals the [`Event::Span`]s it observed locally (PR 5's
//! tracing layer). This module turns those per-server journals into a
//! portable JSONL export, merges exports from every server a tour
//! touched, rebuilds the per-trace causal trees, and scans them for
//! anomalies: orphan spans (a parent never journaled anywhere), retry
//! storms (one transfer leg retried more than a threshold), and accesses
//! that succeeded after the proxy had been revoked.
//!
//! The JSONL schema is deliberately flat — one object per line, string
//! and unsigned-integer values only — so the hand-rolled writer/parser
//! below covers it completely without a serde dependency. Span and trace
//! ids are emitted as 16-digit hex strings because their high bits (the
//! minting server's tag) exceed JSON's safe-integer range.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::telemetry::{Event, Record, SpanId, SpanKind, TraceId};

// ---------------------------------------------------------------------------
// Flat JSON writing
// ---------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_str(out: &mut String, key: &str, val: &str) {
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, val);
    out.push(',');
}

fn push_field_u64(out: &mut String, key: &str, val: u64) {
    push_json_str(out, key);
    out.push(':');
    out.push_str(&val.to_string());
    out.push(',');
}

/// Exports one journal record as a JSONL line, if it is trace-relevant:
/// spans export fully, proxy revocations export so access-after-revoke is
/// detectable offline, everything else is omitted.
pub fn export_record(server: &str, record: &Record) -> Option<String> {
    let mut out = String::from("{");
    match &record.event {
        Event::Span {
            ctx,
            kind,
            agent,
            detail,
            start_ns,
            dur_ns,
        } => {
            push_field_str(&mut out, "type", "span");
            push_field_str(&mut out, "server", server);
            push_field_u64(&mut out, "seq", record.seq);
            push_field_u64(&mut out, "at", record.at);
            push_field_str(&mut out, "trace", &format!("{:016x}", ctx.trace.0));
            push_field_str(&mut out, "span", &format!("{:016x}", ctx.span.0));
            if let Some(parent) = ctx.parent {
                push_field_str(&mut out, "parent", &format!("{:016x}", parent.0));
            }
            push_field_str(&mut out, "kind", kind.as_str());
            push_field_str(&mut out, "agent", &agent.to_string());
            push_field_str(&mut out, "detail", detail);
            push_field_u64(&mut out, "start_ns", *start_ns);
            push_field_u64(&mut out, "dur_ns", *dur_ns);
        }
        Event::ProxyRevoke { resource, holder } => {
            push_field_str(&mut out, "type", "revoke");
            push_field_str(&mut out, "server", server);
            push_field_u64(&mut out, "seq", record.seq);
            push_field_u64(&mut out, "at", record.at);
            push_field_str(&mut out, "resource", &resource.to_string());
            push_field_u64(&mut out, "holder", holder.0);
        }
        // Reference-monitor denials travel with the export as context for
        // an operator reading a flagged trace; the parser skips any type
        // it does not model, so this stays forward-compatible.
        Event::Audit {
            caller,
            op,
            allowed: false,
        } => {
            push_field_str(&mut out, "type", "audit-denied");
            push_field_str(&mut out, "server", server);
            push_field_u64(&mut out, "seq", record.seq);
            push_field_u64(&mut out, "at", record.at);
            push_field_str(&mut out, "op", op.as_str());
            push_field_u64(&mut out, "caller", caller.0);
        }
        _ => return None,
    }
    out.pop(); // trailing comma
    out.push('}');
    Some(out)
}

/// Exports every trace-relevant record of one journal snapshot as JSONL.
pub fn export_journal(server: &str, records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        if let Some(line) = export_record(server, r) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Flat JSON parsing
// ---------------------------------------------------------------------------

/// A value the flat schema admits: a string or an unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonVal {
    Str(String),
    Num(u64),
}

/// Errors from [`parse_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the concatenated input.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonVal>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while matches!(chars.peek(), Some(' ' | '\t')) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected '\"'".into());
        }
        let mut s = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let val = match chars.peek() {
            Some('"') => JsonVal::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                    digits.push(chars.next().unwrap());
                }
                JsonVal::Num(digits.parse().map_err(|_| "number out of range")?)
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        fields.insert(key, val);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing garbage after object".into());
    }
    Ok(fields)
}

fn get_str(f: &BTreeMap<String, JsonVal>, key: &str) -> Result<String, String> {
    match f.get(key) {
        Some(JsonVal::Str(s)) => Ok(s.clone()),
        Some(JsonVal::Num(_)) => Err(format!("field {key:?} is not a string")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_u64(f: &BTreeMap<String, JsonVal>, key: &str) -> Result<u64, String> {
    match f.get(key) {
        Some(JsonVal::Num(n)) => Ok(*n),
        Some(JsonVal::Str(_)) => Err(format!("field {key:?} is not a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_id(f: &BTreeMap<String, JsonVal>, key: &str) -> Result<u64, String> {
    let hex = get_str(f, key)?;
    u64::from_str_radix(&hex, 16).map_err(|_| format!("field {key:?} is not a hex id"))
}

// ---------------------------------------------------------------------------
// Parsed records
// ---------------------------------------------------------------------------

/// One span, as reconstructed from a JSONL export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// The server whose journal recorded the span.
    pub server: String,
    /// That journal's sequence number.
    pub seq: u64,
    /// Virtual time the span was journaled.
    pub at: u64,
    /// The tour it belongs to.
    pub trace: TraceId,
    /// Its own id.
    pub span: SpanId,
    /// Its causal parent (`None` = trace root).
    pub parent: Option<SpanId>,
    /// What phase it covers.
    pub kind: SpanKind,
    /// The agent it is about (URN text).
    pub agent: String,
    /// Kind-specific detail.
    pub detail: String,
    /// When the spanned work started (virtual ns).
    pub start_ns: u64,
    /// How long it took (see [`Event::Span`] for units).
    pub dur_ns: u64,
}

/// One proxy revocation, kept so access-after-revoke is detectable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevokeRec {
    /// The server that revoked.
    pub server: String,
    /// Virtual time of revocation.
    pub at: u64,
    /// The revoked resource (URN text).
    pub resource: String,
}

/// One parsed JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A span.
    Span(SpanRec),
    /// A proxy revocation.
    Revoke(RevokeRec),
}

/// Parses a JSONL export (possibly the concatenation of several servers'
/// exports). Blank lines are skipped; unknown record types are ignored so
/// the format can grow.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |detail: String| TraceParseError {
            line: i + 1,
            detail,
        };
        let fields = parse_flat_object(line).map_err(err)?;
        match get_str(&fields, "type").map_err(err)?.as_str() {
            "span" => {
                let kind_str = get_str(&fields, "kind").map_err(err)?;
                let kind = SpanKind::parse(&kind_str)
                    .ok_or_else(|| err(format!("unknown span kind {kind_str:?}")))?;
                records.push(TraceRecord::Span(SpanRec {
                    server: get_str(&fields, "server").map_err(err)?,
                    seq: get_u64(&fields, "seq").map_err(err)?,
                    at: get_u64(&fields, "at").map_err(err)?,
                    trace: TraceId(get_id(&fields, "trace").map_err(err)?),
                    span: SpanId(get_id(&fields, "span").map_err(err)?),
                    parent: if fields.contains_key("parent") {
                        Some(SpanId(get_id(&fields, "parent").map_err(err)?))
                    } else {
                        None
                    },
                    kind,
                    agent: get_str(&fields, "agent").map_err(err)?,
                    detail: get_str(&fields, "detail").map_err(err)?,
                    start_ns: get_u64(&fields, "start_ns").map_err(err)?,
                    dur_ns: get_u64(&fields, "dur_ns").map_err(err)?,
                }));
            }
            "revoke" => {
                records.push(TraceRecord::Revoke(RevokeRec {
                    server: get_str(&fields, "server").map_err(err)?,
                    at: get_u64(&fields, "at").map_err(err)?,
                    resource: get_str(&fields, "resource").map_err(err)?,
                }));
            }
            _ => {}
        }
    }
    Ok(records)
}

// ---------------------------------------------------------------------------
// Forest reconstruction
// ---------------------------------------------------------------------------

/// One reconstructed trace: the spans of one tour, indexed causally.
#[derive(Debug, Clone, Default)]
pub struct TraceTree {
    /// Every span of the trace, in merged `(at, server, seq)` order.
    pub spans: Vec<SpanRec>,
    /// Root spans (`parent == None`), as indices into `spans`.
    pub roots: Vec<usize>,
    /// Children of each span, as indices into `spans`, keyed by span id.
    pub children: HashMap<SpanId, Vec<usize>>,
    /// Spans whose parent id was never journaled anywhere — a broken
    /// causal chain. Empty in a healthy merge.
    pub orphans: Vec<usize>,
}

impl TraceTree {
    /// The span with id `id`, if present.
    pub fn span(&self, id: SpanId) -> Option<&SpanRec> {
        self.spans.iter().find(|s| s.span == id)
    }
}

/// All traces reconstructed from a merged export, plus the revocations
/// needed for anomaly scanning.
#[derive(Debug, Clone, Default)]
pub struct TraceForest {
    /// Per-trace trees, keyed and ordered by trace id.
    pub traces: BTreeMap<TraceId, TraceTree>,
    /// Revocations seen in the merged journals.
    pub revokes: Vec<RevokeRec>,
}

impl TraceForest {
    /// Builds the forest. At-least-once delivery means the same span can
    /// be journaled on several servers; duplicates (same span id) keep
    /// the earliest copy.
    pub fn build(records: Vec<TraceRecord>) -> TraceForest {
        let mut spans: Vec<SpanRec> = Vec::new();
        let mut revokes = Vec::new();
        for r in records {
            match r {
                TraceRecord::Span(s) => spans.push(s),
                TraceRecord::Revoke(r) => revokes.push(r),
            }
        }
        spans.sort_by(|a, b| (a.at, &a.server, a.seq).cmp(&(b.at, &b.server, b.seq)));

        let mut seen: HashSet<SpanId> = HashSet::new();
        let mut traces: BTreeMap<TraceId, TraceTree> = BTreeMap::new();
        for s in spans {
            if !seen.insert(s.span) {
                continue;
            }
            traces.entry(s.trace).or_default().spans.push(s);
        }
        for tree in traces.values_mut() {
            let ids: HashSet<SpanId> = tree.spans.iter().map(|s| s.span).collect();
            for (i, s) in tree.spans.iter().enumerate() {
                match s.parent {
                    None => tree.roots.push(i),
                    Some(p) if ids.contains(&p) => tree.children.entry(p).or_default().push(i),
                    Some(_) => tree.orphans.push(i),
                }
            }
        }
        TraceForest { traces, revokes }
    }

    /// Total spans across all traces.
    pub fn span_count(&self) -> usize {
        self.traces.values().map(|t| t.spans.len()).sum()
    }

    /// Total orphan spans across all traces (0 in a complete merge).
    pub fn orphan_count(&self) -> usize {
        self.traces.values().map(|t| t.orphans.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Anomaly scanning
// ---------------------------------------------------------------------------

/// Something a trace scan flagged for an operator's attention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// A span's parent was never journaled on any merged server: the
    /// causal chain is broken (lost journal, eviction, or a bug).
    OrphanSpan {
        /// The trace it belongs to.
        trace: TraceId,
        /// The orphaned span.
        span: SpanId,
        /// Its kind.
        kind: SpanKind,
        /// The missing parent id.
        parent: SpanId,
    },
    /// One transfer leg was retried more than the threshold — a hop that
    /// is dominating the tour's tail latency.
    RetryStorm {
        /// The trace it belongs to.
        trace: TraceId,
        /// The transfer span being retried.
        span: SpanId,
        /// The struggling agent (URN text).
        agent: String,
        /// How many retries were attached.
        retries: usize,
    },
    /// An access succeeded at a virtual time later than a revocation of
    /// the same resource — the window the paper's revocation protocol is
    /// supposed to close.
    AccessAfterRevoke {
        /// The trace it belongs to.
        trace: TraceId,
        /// The offending access span.
        span: SpanId,
        /// The revoked resource (URN text).
        resource: String,
        /// When the access happened (virtual time).
        access_at: u64,
        /// When the revocation happened (virtual time).
        revoked_at: u64,
    },
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anomaly::OrphanSpan {
                trace,
                span,
                kind,
                parent,
            } => write!(
                f,
                "orphan span: trace {trace} span {span} ({kind}) has unjournaled parent {parent}"
            ),
            Anomaly::RetryStorm {
                trace,
                span,
                agent,
                retries,
            } => write!(
                f,
                "retry storm: trace {trace} transfer {span} of {agent} retried {retries} times"
            ),
            Anomaly::AccessAfterRevoke {
                trace,
                span,
                resource,
                access_at,
                revoked_at,
            } => write!(
                f,
                "access after revoke: trace {trace} span {span} accessed {resource} at t={access_at} but it was revoked at t={revoked_at}"
            ),
        }
    }
}

/// Scans the forest: orphan spans, transfers with more than
/// `retry_threshold` retries, and successful accesses after a revocation
/// of the same resource.
pub fn scan_anomalies(forest: &TraceForest, retry_threshold: usize) -> Vec<Anomaly> {
    let mut anomalies = Vec::new();
    for (trace, tree) in &forest.traces {
        for &i in &tree.orphans {
            let s = &tree.spans[i];
            anomalies.push(Anomaly::OrphanSpan {
                trace: *trace,
                span: s.span,
                kind: s.kind,
                parent: s.parent.expect("orphans have parents"),
            });
        }
        for s in &tree.spans {
            if s.kind != SpanKind::Transfer {
                continue;
            }
            let retries = tree.children.get(&s.span).map_or(0, |kids| {
                kids.iter()
                    .filter(|&&k| tree.spans[k].kind == SpanKind::Retry)
                    .count()
            });
            if retries > retry_threshold {
                anomalies.push(Anomaly::RetryStorm {
                    trace: *trace,
                    span: s.span,
                    agent: s.agent.clone(),
                    retries,
                });
            }
        }
        for s in &tree.spans {
            // Access detail format: "<resource> <method> <outcome>".
            if s.kind != SpanKind::Access {
                continue;
            }
            let mut parts = s.detail.split_whitespace();
            let (Some(resource), _method, Some("ok")) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            for rev in &forest.revokes {
                if rev.resource == resource && s.at > rev.at {
                    anomalies.push(Anomaly::AccessAfterRevoke {
                        trace: *trace,
                        span: s.span,
                        resource: rev.resource.clone(),
                        access_at: s.at,
                        revoked_at: rev.at,
                    });
                    break;
                }
            }
        }
    }
    anomalies
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render_span(tree: &TraceTree, i: usize, depth: usize, out: &mut String) {
    let s = &tree.spans[i];
    out.push_str(&"  ".repeat(depth + 1));
    out.push_str(&format!(
        "{} {} @{} dur={}ns [{}] {}\n",
        s.kind, s.agent, s.at, s.dur_ns, s.server, s.detail
    ));
    if let Some(kids) = tree.children.get(&s.span) {
        for &k in kids {
            render_span(tree, k, depth + 1, out);
        }
    }
}

/// Renders one trace as an indented causal tree.
pub fn render_tree(trace: TraceId, tree: &TraceTree) -> String {
    let mut out = format!("trace {trace} ({} spans)\n", tree.spans.len());
    for &r in &tree.roots {
        render_span(tree, r, 0, &mut out);
    }
    for &o in &tree.orphans {
        let s = &tree.spans[o];
        out.push_str(&format!(
            "  !! ORPHAN {} {} @{} [{}] {}\n",
            s.kind, s.agent, s.at, s.server, s.detail
        ));
        render_span(tree, o, 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainId;
    use crate::telemetry::{Record, Severity, SpanContext};
    use ajanta_naming::Urn;

    fn agent() -> Urn {
        Urn::agent("home.org", ["alice", "a1"]).unwrap()
    }

    fn span_record(
        seq: u64,
        at: u64,
        trace: u64,
        span: u64,
        parent: Option<u64>,
        kind: SpanKind,
        detail: &str,
    ) -> Record {
        Record {
            seq,
            at,
            severity: Severity::Info,
            event: Event::Span {
                ctx: SpanContext {
                    trace: TraceId(trace),
                    span: SpanId(span),
                    parent: parent.map(SpanId),
                },
                kind,
                agent: agent(),
                detail: detail.into(),
                start_ns: at,
                dur_ns: 5,
            },
        }
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_span_field() {
        let records = vec![
            span_record(0, 10, 0xABCD, 1, None, SpanKind::Dispatch, "launch"),
            span_record(
                1,
                20,
                0xABCD,
                2,
                Some(1),
                SpanKind::Transfer,
                "to \"site1.org\"\nhop 0\t",
            ),
        ];
        let jsonl = export_journal("site0.org", &records);
        assert_eq!(jsonl.lines().count(), 2);
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 2);
        let TraceRecord::Span(s) = &parsed[1] else {
            panic!("expected span");
        };
        assert_eq!(s.server, "site0.org");
        assert_eq!(s.seq, 1);
        assert_eq!(s.at, 20);
        assert_eq!(s.trace, TraceId(0xABCD));
        assert_eq!(s.span, SpanId(2));
        assert_eq!(s.parent, Some(SpanId(1)));
        assert_eq!(s.kind, SpanKind::Transfer);
        assert_eq!(s.agent, agent().to_string());
        assert_eq!(s.detail, "to \"site1.org\"\nhop 0\t");
        assert_eq!(s.dur_ns, 5);
    }

    #[test]
    fn large_ids_survive_the_hex_encoding() {
        let big = 0xFFFF_FFFF_0000_0001u64; // beyond JSON's 2^53 safe range
        let jsonl = export_journal(
            "s",
            &[span_record(
                0,
                1,
                big,
                big - 1,
                Some(big - 2),
                SpanKind::Retry,
                "",
            )],
        );
        let parsed = parse_jsonl(&jsonl).unwrap();
        let TraceRecord::Span(s) = &parsed[0] else {
            panic!()
        };
        assert_eq!(s.trace.0, big);
        assert_eq!(s.span.0, big - 1);
        assert_eq!(s.parent, Some(SpanId(big - 2)));
    }

    #[test]
    fn revocations_export_and_parse() {
        let rec = Record {
            seq: 3,
            at: 99,
            severity: Severity::Warn,
            event: Event::ProxyRevoke {
                resource: Urn::resource("x.org", ["r"]).unwrap(),
                holder: DomainId(4),
            },
        };
        let jsonl = export_journal("x.org", &[rec]);
        let parsed = parse_jsonl(&jsonl).unwrap();
        let TraceRecord::Revoke(r) = &parsed[0] else {
            panic!()
        };
        assert_eq!(r.at, 99);
        assert_eq!(r.resource, "ajn://x.org/resource/r");
    }

    #[test]
    fn non_trace_events_are_not_exported() {
        let rec = Record {
            seq: 0,
            at: 0,
            severity: Severity::Info,
            event: Event::AgentLog {
                agent: agent(),
                text: "hi".into(),
            },
        };
        assert_eq!(export_record("s", &rec), None);
    }

    #[test]
    fn forest_links_children_detects_orphans_and_dedups() {
        let mut records = vec![
            span_record(0, 10, 1, 100, None, SpanKind::Dispatch, "launch"),
            span_record(1, 20, 1, 101, Some(100), SpanKind::Transfer, "t"),
            span_record(2, 30, 1, 102, Some(101), SpanKind::Admission, "a"),
            // parent 999 was never journaled -> orphan
            span_record(3, 40, 1, 103, Some(999), SpanKind::Bind, "b"),
            // a second trace
            span_record(4, 50, 2, 200, None, SpanKind::Dispatch, "launch"),
        ];
        // Duplicate delivery: span 102 also journaled on another server.
        records.push(span_record(
            9,
            31,
            1,
            102,
            Some(101),
            SpanKind::Admission,
            "a",
        ));

        let jsonl: String = records
            .iter()
            .map(|r| export_record("s", r).unwrap() + "\n")
            .collect();
        let forest = TraceForest::build(parse_jsonl(&jsonl).unwrap());

        assert_eq!(forest.traces.len(), 2);
        assert_eq!(forest.span_count(), 5, "duplicate span deduped");
        assert_eq!(forest.orphan_count(), 1);
        let t1 = &forest.traces[&TraceId(1)];
        assert_eq!(t1.roots.len(), 1);
        assert_eq!(t1.children[&SpanId(100)].len(), 1);
        assert_eq!(t1.children[&SpanId(101)].len(), 1);
        assert_eq!(t1.orphans.len(), 1);
        assert_eq!(t1.spans[t1.orphans[0]].span, SpanId(103));
        let rendered = render_tree(TraceId(1), t1);
        assert!(rendered.contains("ORPHAN"));
        assert!(rendered.contains("admission"));
    }

    #[test]
    fn anomaly_scan_flags_storms_orphans_and_late_accesses() {
        let mut records = vec![
            span_record(0, 10, 1, 1, None, SpanKind::Dispatch, "launch"),
            span_record(1, 20, 1, 2, Some(1), SpanKind::Transfer, "t"),
        ];
        for i in 0..4 {
            records.push(span_record(
                2 + i,
                21 + i,
                1,
                10 + i,
                Some(2),
                SpanKind::Retry,
                "r",
            ));
        }
        records.push(span_record(
            8,
            200,
            1,
            20,
            Some(2),
            SpanKind::Access,
            "ajn://x.org/resource/r put ok",
        ));
        records.push(span_record(9, 40, 1, 99, Some(777), SpanKind::Bind, "b"));
        let mut parsed: Vec<TraceRecord> = records
            .iter()
            .map(|r| {
                let line = export_record("s", r).unwrap();
                parse_jsonl(&line).unwrap().remove(0)
            })
            .collect();
        parsed.push(TraceRecord::Revoke(RevokeRec {
            server: "s".into(),
            at: 100,
            resource: "ajn://x.org/resource/r".into(),
        }));

        let forest = TraceForest::build(parsed);
        let anomalies = scan_anomalies(&forest, 3);
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::RetryStorm { retries: 4, .. })));
        assert!(anomalies.iter().any(|a| matches!(
            a,
            Anomaly::OrphanSpan {
                span: SpanId(99),
                ..
            }
        )));
        assert!(anomalies.iter().any(|a| matches!(
            a,
            Anomaly::AccessAfterRevoke {
                access_at: 200,
                revoked_at: 100,
                ..
            }
        )));
        // A denied access after revoke is the system working, not an anomaly.
        let denied = TraceRecord::Span(SpanRec {
            server: "s".into(),
            seq: 50,
            at: 300,
            trace: TraceId(1),
            span: SpanId(300),
            parent: Some(SpanId(1)),
            kind: SpanKind::Access,
            agent: "a".into(),
            detail: "ajn://x.org/resource/r put denied".into(),
            start_ns: 300,
            dur_ns: 1,
        });
        let forest2 = TraceForest::build(vec![
            denied,
            TraceRecord::Revoke(RevokeRec {
                server: "s".into(),
                at: 100,
                resource: "ajn://x.org/resource/r".into(),
            }),
        ]);
        assert!(scan_anomalies(&forest2, 3)
            .iter()
            .all(|a| !matches!(a, Anomaly::AccessAfterRevoke { .. })));
        // Threshold is strict: 4 retries at threshold 4 is not a storm.
        assert!(scan_anomalies(&forest, 4)
            .iter()
            .all(|a| !matches!(a, Anomaly::RetryStorm { .. })));
    }
}
