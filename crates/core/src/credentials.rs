//! Agent credentials (paper Section 5.2).
//!
//! *"Each agent carries a set of credentials, which associate the agent's
//! identity with those of its owner and creator, in a tamperproof manner.
//! Apart from an identity (name), the credentials include the owner's
//! public key certificate. The creator may delegate to the agent only a
//! limited set of privileges ... Such access restrictions are also encoded
//! in the credentials."*
//!
//! And: *"the credentials could have an expiration time so that stolen
//! credentials cannot be misused indefinitely."*
//!
//! A server may also *"forward an agent to another server (like a
//! subcontract) granting it some additional privileges or restricting some
//! of its existing ones"* — modeled as a chain of signed
//! [`Endorsement`]s appended by intermediate servers; the **effective
//! rights are the intersection** of the owner's delegation and every
//! endorsement's restriction, so no endorsement can amplify privilege
//! beyond what the owner granted. (Additional privileges granted by a
//! forwarding server are that server's to grant on its *own* resources —
//! its local policy consults the endorsement chain via
//! [`Credentials::endorsers`].)

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::sig::{self, Signature};
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust, Sha256};
use ajanta_naming::Urn;
use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire, WireError};

use crate::rights::Rights;

/// Why credentials failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredentialError {
    /// The owner's certificate chain failed to validate.
    BadOwnerCertificate(String),
    /// The certified subject is not the claimed owner.
    OwnerMismatch {
        /// Owner claimed in the credentials.
        claimed: String,
        /// Subject certified by the chain.
        certified: String,
    },
    /// The owner's signature over the credential body is invalid.
    BadSignature,
    /// The credentials expired.
    Expired {
        /// Expiry instant.
        not_after: u64,
        /// Validation instant.
        now: u64,
    },
    /// An endorsement's certificate chain failed to validate.
    BadEndorsementCertificate(String),
    /// An endorsement's signature is invalid.
    BadEndorsementSignature(usize),
}

impl std::fmt::Display for CredentialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CredentialError::BadOwnerCertificate(e) => write!(f, "owner certificate: {e}"),
            CredentialError::OwnerMismatch { claimed, certified } => {
                write!(f, "claimed owner {claimed}, certified {certified}")
            }
            CredentialError::BadSignature => f.write_str("owner signature invalid"),
            CredentialError::Expired { not_after, now } => {
                write!(f, "credentials expired at {not_after}, now {now}")
            }
            CredentialError::BadEndorsementCertificate(e) => {
                write!(f, "endorsement certificate: {e}")
            }
            CredentialError::BadEndorsementSignature(i) => {
                write!(f, "endorsement {i} signature invalid")
            }
        }
    }
}

impl std::error::Error for CredentialError {}

/// A forwarding server's signed restriction on an agent's rights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing server.
    pub by: Urn,
    /// The endorser's certificate chain (leaf first).
    pub chain: Vec<Certificate>,
    /// Rights mask to intersect with the effective rights so far.
    pub restriction: Rights,
    /// Signature over (previous-layer hash ‖ endorser ‖ restriction).
    pub sig: Signature,
}

impl Wire for Endorsement {
    fn encode(&self, e: &mut Encoder) {
        self.by.encode(e);
        encode_seq(&self.chain, e);
        self.restriction.encode(e);
        self.sig.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Endorsement {
            by: Urn::decode(d)?,
            chain: decode_seq(d)?,
            restriction: Rights::decode(d)?,
            sig: Signature::decode(d)?,
        })
    }
}

/// An agent's signed credentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// The agent's global name.
    pub agent: Urn,
    /// The human principal the agent acts for.
    pub owner: Urn,
    /// The entity that constructed the agent (application, another agent).
    pub creator: Urn,
    /// The agent's home site, where results are reported.
    pub home: Urn,
    /// Owner's certificate chain (leaf first) — carried so any server can
    /// verify without an on-line authentication service (Section 5.2
    /// explicitly notes one "may not always be available").
    pub owner_chain: Vec<Certificate>,
    /// Rights the owner delegated to this agent.
    pub delegated: Rights,
    /// Expiry instant (virtual ns).
    pub not_after: u64,
    /// Owner's signature over the body.
    pub signature: Signature,
    /// Restrictions appended by forwarding servers, oldest first.
    pub endorsements: Vec<Endorsement>,
}

/// Hash of the owner-signed body (everything except endorsements).
fn body_hash(
    agent: &Urn,
    owner: &Urn,
    creator: &Urn,
    home: &Urn,
    owner_chain: &[Certificate],
    delegated: &Rights,
    not_after: u64,
) -> [u8; 32] {
    let mut e = Encoder::new();
    agent.encode(&mut e);
    owner.encode(&mut e);
    creator.encode(&mut e);
    home.encode(&mut e);
    encode_seq(owner_chain, &mut e);
    delegated.encode(&mut e);
    e.put_varint(not_after);
    let mut h = Sha256::new();
    h.update(b"ajanta.cred.v1");
    h.update(e.finish());
    h.finalize().0
}

/// Hash of the credential state after `k` endorsements — each endorsement
/// signs the hash of everything before it, so layers cannot be reordered
/// or dropped without detection.
fn layer_hash(prev: &[u8; 32], by: &Urn, restriction: &Rights) -> [u8; 32] {
    let mut e = Encoder::new();
    e.put_raw(prev);
    by.encode(&mut e);
    restriction.encode(&mut e);
    let mut h = Sha256::new();
    h.update(b"ajanta.cred.endorse.v1");
    h.update(e.finish());
    h.finalize().0
}

impl Credentials {
    /// Validates the whole credential object at virtual instant `now`
    /// against the verifier's roots of trust. On success returns the
    /// **effective rights**: the owner's delegation intersected with every
    /// endorsement restriction.
    pub fn verify(&self, roots: &RootOfTrust, now: u64) -> Result<Rights, CredentialError> {
        if now > self.not_after {
            return Err(CredentialError::Expired {
                not_after: self.not_after,
                now,
            });
        }
        let (subject, owner_key) = roots
            .verify_chain(&self.owner_chain, now)
            .map_err(|e| CredentialError::BadOwnerCertificate(e.to_string()))?;
        let owner_str = self.owner.to_string();
        if subject != owner_str {
            return Err(CredentialError::OwnerMismatch {
                claimed: owner_str,
                certified: subject.to_string(),
            });
        }
        let mut hash = body_hash(
            &self.agent,
            &self.owner,
            &self.creator,
            &self.home,
            &self.owner_chain,
            &self.delegated,
            self.not_after,
        );
        sig::verify(&owner_key, &hash, &self.signature)
            .map_err(|_| CredentialError::BadSignature)?;

        let mut effective = self.delegated.clone();
        for (i, endorsement) in self.endorsements.iter().enumerate() {
            let (subject, key) = roots
                .verify_chain(&endorsement.chain, now)
                .map_err(|e| CredentialError::BadEndorsementCertificate(e.to_string()))?;
            if subject != endorsement.by.to_string() {
                return Err(CredentialError::BadEndorsementCertificate(format!(
                    "endorser {} not certified (chain is for {subject})",
                    endorsement.by
                )));
            }
            hash = layer_hash(&hash, &endorsement.by, &endorsement.restriction);
            sig::verify(&key, &hash, &endorsement.sig)
                .map_err(|_| CredentialError::BadEndorsementSignature(i))?;
            effective = effective.intersect(&endorsement.restriction);
        }
        Ok(effective)
    }

    /// Appends a forwarding server's restriction (the "subcontract" case).
    /// The result's effective rights can only shrink.
    pub fn endorse(
        &self,
        by: &Urn,
        by_keys: &KeyPair,
        by_chain: Vec<Certificate>,
        restriction: Rights,
        rng: &mut DetRng,
    ) -> Credentials {
        let mut hash = body_hash(
            &self.agent,
            &self.owner,
            &self.creator,
            &self.home,
            &self.owner_chain,
            &self.delegated,
            self.not_after,
        );
        for e in &self.endorsements {
            hash = layer_hash(&hash, &e.by, &e.restriction);
        }
        hash = layer_hash(&hash, by, &restriction);
        let sig = by_keys.sign(&hash, rng);
        let mut out = self.clone();
        out.endorsements.push(Endorsement {
            by: by.clone(),
            chain: by_chain,
            restriction,
            sig,
        });
        out
    }

    /// Names of the servers that endorsed (forwarded) this agent, oldest
    /// first — input to local policies that trust particular forwarders.
    pub fn endorsers(&self) -> impl Iterator<Item = &Urn> {
        self.endorsements.iter().map(|e| &e.by)
    }
}

impl Wire for Credentials {
    fn encode(&self, e: &mut Encoder) {
        self.agent.encode(e);
        self.owner.encode(e);
        self.creator.encode(e);
        self.home.encode(e);
        encode_seq(&self.owner_chain, e);
        self.delegated.encode(e);
        e.put_varint(self.not_after);
        self.signature.encode(e);
        encode_seq(&self.endorsements, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Credentials {
            agent: Urn::decode(d)?,
            owner: Urn::decode(d)?,
            creator: Urn::decode(d)?,
            home: Urn::decode(d)?,
            owner_chain: decode_seq(d)?,
            delegated: Rights::decode(d)?,
            not_after: d.get_varint()?,
            signature: Signature::decode(d)?,
            endorsements: decode_seq(d)?,
        })
    }
}

/// Builder used by owners (their client applications) to mint credentials.
pub struct CredentialsBuilder {
    agent: Urn,
    owner: Urn,
    creator: Urn,
    home: Urn,
    owner_chain: Vec<Certificate>,
    delegated: Rights,
    not_after: u64,
}

impl CredentialsBuilder {
    /// Starts a credential for `agent`, owned by `owner`.
    pub fn new(agent: Urn, owner: Urn) -> Self {
        let creator = owner.clone();
        let home = owner.clone();
        CredentialsBuilder {
            agent,
            owner,
            creator,
            home,
            owner_chain: Vec::new(),
            delegated: Rights::none(),
            not_after: u64::MAX,
        }
    }

    /// Sets the creator (defaults to the owner).
    pub fn creator(mut self, creator: Urn) -> Self {
        self.creator = creator;
        self
    }

    /// Sets the home site (defaults to the owner name).
    pub fn home(mut self, home: Urn) -> Self {
        self.home = home;
        self
    }

    /// Attaches the owner's certificate chain (leaf first).
    pub fn owner_chain(mut self, chain: Vec<Certificate>) -> Self {
        self.owner_chain = chain;
        self
    }

    /// Sets the delegated rights (defaults to none — least privilege).
    pub fn delegate(mut self, rights: Rights) -> Self {
        self.delegated = rights;
        self
    }

    /// Sets the expiry instant (defaults to never).
    pub fn expires_at(mut self, not_after: u64) -> Self {
        self.not_after = not_after;
        self
    }

    /// Signs with the owner's key, producing the credentials.
    pub fn sign(self, owner_keys: &KeyPair, rng: &mut DetRng) -> Credentials {
        let hash = body_hash(
            &self.agent,
            &self.owner,
            &self.creator,
            &self.home,
            &self.owner_chain,
            &self.delegated,
            self.not_after,
        );
        let signature = owner_keys.sign(&hash, rng);
        Credentials {
            agent: self.agent,
            owner: self.owner,
            creator: self.creator,
            home: self.home,
            owner_chain: self.owner_chain,
            delegated: self.delegated,
            not_after: self.not_after,
            signature,
            endorsements: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        roots: RootOfTrust,
        owner_keys: KeyPair,
        owner: Urn,
        owner_chain: Vec<Certificate>,
        agent: Urn,
        rng: DetRng,
    }

    fn fixture() -> Fixture {
        let mut rng = DetRng::new(2024);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca.root", ca.public);
        let owner = Urn::owner("umn.edu", ["alice"]).unwrap();
        let owner_keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(
            owner.to_string(),
            owner_keys.public,
            "ca.root",
            &ca,
            u64::MAX,
            1,
            &mut rng,
        );
        Fixture {
            roots,
            owner_keys,
            owner,
            owner_chain: vec![cert],
            agent: Urn::agent("umn.edu", ["shopper", "1"]).unwrap(),
            rng,
        }
    }

    fn res(p: &str) -> Urn {
        Urn::resource("acme.com", [p]).unwrap()
    }

    fn mint(fx: &mut Fixture, rights: Rights, not_after: u64) -> Credentials {
        CredentialsBuilder::new(fx.agent.clone(), fx.owner.clone())
            .owner_chain(fx.owner_chain.clone())
            .delegate(rights)
            .expires_at(not_after)
            .sign(&fx.owner_keys, &mut fx.rng)
    }

    #[test]
    fn valid_credentials_verify_and_return_rights() {
        let mut fx = fixture();
        let rights = Rights::on_resource(res("catalog"));
        let creds = mint(&mut fx, rights.clone(), 1_000);
        let effective = creds.verify(&fx.roots, 500).unwrap();
        assert_eq!(effective, rights);
    }

    #[test]
    fn expiry_enforced() {
        let mut fx = fixture();
        let creds = mint(&mut fx, Rights::all(), 100);
        assert!(creds.verify(&fx.roots, 100).is_ok());
        assert_eq!(
            creds.verify(&fx.roots, 101),
            Err(CredentialError::Expired {
                not_after: 100,
                now: 101
            })
        );
    }

    #[test]
    fn every_field_is_tamper_evident() {
        let mut fx = fixture();
        let creds = mint(&mut fx, Rights::on_resource(res("catalog")), 1_000);

        let mut c = creds.clone();
        c.agent = Urn::agent("umn.edu", ["imposter"]).unwrap();
        assert_eq!(c.verify(&fx.roots, 0), Err(CredentialError::BadSignature));

        let mut c = creds.clone();
        c.creator = Urn::owner("evil.org", ["mallory"]).unwrap();
        assert_eq!(c.verify(&fx.roots, 0), Err(CredentialError::BadSignature));

        let mut c = creds.clone();
        c.home = Urn::server("evil.org", ["sink"]).unwrap();
        assert_eq!(c.verify(&fx.roots, 0), Err(CredentialError::BadSignature));

        let mut c = creds.clone();
        c.delegated = Rights::all(); // privilege escalation attempt
        assert_eq!(c.verify(&fx.roots, 0), Err(CredentialError::BadSignature));

        let mut c = creds.clone();
        c.not_after = u64::MAX; // lifetime extension attempt
        assert_eq!(c.verify(&fx.roots, 0), Err(CredentialError::BadSignature));

        let mut c = creds;
        c.owner = Urn::owner("umn.edu", ["bob"]).unwrap();
        // Owner swap breaks the chain-subject match first.
        assert!(matches!(
            c.verify(&fx.roots, 0),
            Err(CredentialError::OwnerMismatch { .. })
        ));
    }

    #[test]
    fn unknown_owner_ca_rejected() {
        let mut fx = fixture();
        let mut rng = DetRng::new(1);
        let rogue_ca = KeyPair::generate(&mut rng);
        let rogue_cert = Certificate::issue(
            fx.owner.to_string(),
            fx.owner_keys.public,
            "ca.rogue",
            &rogue_ca,
            u64::MAX,
            1,
            &mut rng,
        );
        let creds = CredentialsBuilder::new(fx.agent.clone(), fx.owner.clone())
            .owner_chain(vec![rogue_cert])
            .sign(&fx.owner_keys, &mut fx.rng);
        assert!(matches!(
            creds.verify(&fx.roots, 0),
            Err(CredentialError::BadOwnerCertificate(_))
        ));
    }

    #[test]
    fn endorsement_restricts_rights() {
        let mut fx = fixture();
        let creds = mint(&mut fx, Rights::on_subtree(res("catalog")), 1_000);

        // A forwarding server endorses with a narrower mask.
        let server = Urn::server("acme.com", ["s1"]).unwrap();
        let server_keys = KeyPair::generate(&mut fx.rng);
        let ca_keys = fx.roots.key_of("ca.root").copied().unwrap();
        let _ = ca_keys;
        // Need a CA-signed cert for the server; reuse the fixture CA via a
        // fresh issue — regenerate CA deterministically.
        let mut rng2 = DetRng::new(2024);
        let ca = KeyPair::generate(&mut rng2);
        let server_cert = Certificate::issue(
            server.to_string(),
            server_keys.public,
            "ca.root",
            &ca,
            u64::MAX,
            9,
            &mut fx.rng,
        );
        let restricted = creds.endorse(
            &server,
            &server_keys,
            vec![server_cert],
            Rights::none().grant_method(res("catalog"), "query"),
            &mut fx.rng,
        );
        let effective = restricted.verify(&fx.roots, 0).unwrap();
        assert!(effective.permits(&res("catalog"), "query"));
        assert!(!effective.permits(&res("catalog"), "buy"));
        assert_eq!(restricted.endorsers().collect::<Vec<_>>(), vec![&server]);
    }

    #[test]
    fn tampered_endorsement_detected() {
        let mut fx = fixture();
        let creds = mint(&mut fx, Rights::on_subtree(res("catalog")), 1_000);
        let server = Urn::server("acme.com", ["s1"]).unwrap();
        let server_keys = KeyPair::generate(&mut fx.rng);
        let mut rng2 = DetRng::new(2024);
        let ca = KeyPair::generate(&mut rng2);
        let server_cert = Certificate::issue(
            server.to_string(),
            server_keys.public,
            "ca.root",
            &ca,
            u64::MAX,
            9,
            &mut fx.rng,
        );
        let restricted = creds.endorse(
            &server,
            &server_keys,
            vec![server_cert],
            Rights::none().grant_method(res("catalog"), "query"),
            &mut fx.rng,
        );

        // Widening the restriction after signing must be detected.
        let mut tampered = restricted.clone();
        tampered.endorsements[0].restriction = Rights::all();
        assert_eq!(
            tampered.verify(&fx.roots, 0),
            Err(CredentialError::BadEndorsementSignature(0))
        );

        // Dropping the endorsement layer restores the owner's (wider)
        // rights but is allowed structurally — protection against layer
        // stripping comes from servers demanding endorsements from the
        // forwarding path; record that contract here:
        let mut stripped = restricted;
        stripped.endorsements.clear();
        assert!(stripped.verify(&fx.roots, 0).is_ok());
    }

    #[test]
    fn wire_roundtrip_preserves_verifiability() {
        let mut fx = fixture();
        let creds = mint(&mut fx, Rights::on_resource(res("catalog")), 1_000);
        let back = Credentials::from_bytes(&creds.to_bytes()).unwrap();
        assert_eq!(back, creds);
        back.verify(&fx.roots, 0).unwrap();
    }

    #[test]
    fn bitflips_anywhere_break_verification() {
        let mut fx = fixture();
        let creds = mint(&mut fx, Rights::on_resource(res("catalog")), 1_000);
        let bytes = creds.to_bytes();
        let mut rejected = 0;
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            match Credentials::from_bytes(&bad) {
                Err(_) => rejected += 1,
                Ok(c) => {
                    if c.verify(&fx.roots, 0).is_err() {
                        rejected += 1;
                    }
                }
            }
        }
        // Every single-byte corruption is caught either at decode or at
        // verification.
        assert_eq!(rejected, bytes.len());
    }

    #[test]
    fn builder_defaults_are_least_privilege() {
        let mut fx = fixture();
        let creds = CredentialsBuilder::new(fx.agent.clone(), fx.owner.clone())
            .owner_chain(fx.owner_chain.clone())
            .sign(&fx.owner_keys, &mut fx.rng);
        let effective = creds.verify(&fx.roots, 0).unwrap();
        assert!(effective.is_none(), "default delegation must be empty");
        assert_eq!(creds.creator, fx.owner);
    }
}
