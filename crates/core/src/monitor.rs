//! The reference monitor (Java security-manager analogue).
//!
//! Paper Section 3.2: *"the security manager acts as a reference
//! monitor"* — every security-sensitive operation traps to one policy
//! point, and an installed monitor cannot be replaced. Section 5.4 then
//! deliberately narrows its job: *"our approach is to limit the use of the
//! security manager to providing generic protection of system resources
//! and not have it directly deal with the protection of application-level
//! objects"* — application-level policy lives in resources and proxies.
//!
//! Accordingly [`HostMonitor`] checks only **system-level** operations:
//! thread/domain manipulation (Section 5.3: "thread group manipulation
//! operations must therefore be treated as privileged"), registry
//! mutation, domain-database writes, agent launch/dispatch, and monitor
//! replacement itself. Every decision is appended to the shared
//! [`telemetry::Journal`](crate::telemetry::Journal) as an
//! [`Event::Audit`](crate::telemetry::Event::Audit); [`HostMonitor::audit_log`]
//! and [`HostMonitor::denial_count`] are views over that journal, so the
//! monitor no longer holds (unbounded) private state of its own.

use std::sync::Arc;

use crate::domain::DomainId;
use crate::telemetry::{Counter, Event, Journal};

/// A system-level operation subject to mediation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemOp {
    /// Create a thread inside `target` — an agent may only create threads
    /// in its own domain; the server may create them anywhere.
    CreateThread {
        /// Domain the new thread would join.
        target: DomainId,
    },
    /// Manipulate (suspend/kill/modify) threads of `target`.
    ManipulateDomain {
        /// Domain being manipulated.
        target: DomainId,
    },
    /// Mutate the resource registry (register/unregister).
    MutateRegistry,
    /// Mutate the domain database.
    MutateDomainDatabase,
    /// Dispatch an agent into the network from this server.
    DispatchAgent,
    /// Replace or reconfigure the security monitor itself.
    ReplaceMonitor,
}

impl SystemOp {
    /// Stable kebab-case label (used by the JSONL trace export).
    pub fn as_str(&self) -> &'static str {
        match self {
            SystemOp::CreateThread { .. } => "create-thread",
            SystemOp::ManipulateDomain { .. } => "manipulate-domain",
            SystemOp::MutateRegistry => "mutate-registry",
            SystemOp::MutateDomainDatabase => "mutate-domain-database",
            SystemOp::DispatchAgent => "dispatch-agent",
            SystemOp::ReplaceMonitor => "replace-monitor",
        }
    }
}

impl std::fmt::Display for SystemOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A refused operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Who attempted the operation.
    pub caller: DomainId,
    /// What was attempted.
    pub op: SystemOp,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} denied {:?}: {}", self.caller, self.op, self.reason)
    }
}

impl std::error::Error for Violation {}

/// One audit-log entry, as returned by [`HostMonitor::audit_log`] —
/// a projection of [`Event::Audit`] records in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Who asked.
    pub caller: DomainId,
    /// What was asked.
    pub op: SystemOp,
    /// Whether it was allowed.
    pub allowed: bool,
}

/// The server's reference monitor.
///
/// The policy is fixed at construction (agents cannot install their own —
/// paper Section 3.2: "Applets are not permitted to install their own
/// security managers"); even the server goes through [`HostMonitor::check`]
/// so the audit log is complete. Decisions are journaled in the shared
/// [`Journal`] — pass one in with [`HostMonitor::with_journal`] to unify
/// the audit trail with the rest of the server's telemetry, or use
/// [`HostMonitor::new`] for a standalone monitor with a private journal.
#[derive(Debug)]
pub struct HostMonitor {
    /// Whether agents may dispatch (launch) further agents from here.
    agents_may_dispatch: bool,
    journal: Arc<Journal>,
}

impl Default for HostMonitor {
    fn default() -> Self {
        HostMonitor::new()
    }
}

impl HostMonitor {
    /// A monitor with the default policy (agents may dispatch agents —
    /// needed for the dynamic-extension scenario of Section 5.5) and a
    /// private journal.
    pub fn new() -> Self {
        HostMonitor::with_journal(Arc::new(Journal::new()), true)
    }

    /// A stricter monitor that refuses agent-initiated dispatch.
    pub fn no_agent_dispatch() -> Self {
        HostMonitor::with_journal(Arc::new(Journal::new()), false)
    }

    /// A monitor appending its audit decisions to `journal`.
    pub fn with_journal(journal: Arc<Journal>, agents_may_dispatch: bool) -> Self {
        HostMonitor {
            agents_may_dispatch,
            journal,
        }
    }

    /// The journal this monitor audits into.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The single mediation point.
    pub fn check(&self, caller: DomainId, op: SystemOp) -> Result<(), Violation> {
        let decision = self.decide(caller, &op);
        self.journal.append(Event::Audit {
            caller,
            op: op.clone(),
            allowed: decision.is_none(),
        });
        match decision {
            None => Ok(()),
            Some(reason) => Err(Violation { caller, op, reason }),
        }
    }

    /// Pure policy function: `None` = allow, `Some(reason)` = deny.
    fn decide(&self, caller: DomainId, op: &SystemOp) -> Option<&'static str> {
        if caller.is_server() {
            // The server domain is trusted for everything except replacing
            // the monitor, which nobody may do at runtime.
            return match op {
                SystemOp::ReplaceMonitor => Some("the monitor cannot be replaced at runtime"),
                _ => None,
            };
        }
        match op {
            SystemOp::CreateThread { target } | SystemOp::ManipulateDomain { target } => {
                if *target == caller {
                    None
                } else {
                    Some("agents may only manage threads in their own domain")
                }
            }
            SystemOp::MutateRegistry => {
                // Registration itself is allowed — agents may install
                // resources (Section 5.5's dynamic extension); ownership
                // checks inside the registry prevent touching others'
                // entries.
                None
            }
            SystemOp::MutateDomainDatabase => {
                Some("only the server domain updates the domain database")
            }
            SystemOp::DispatchAgent => {
                if self.agents_may_dispatch {
                    None
                } else {
                    Some("agent dispatch from this server is disabled")
                }
            }
            SystemOp::ReplaceMonitor => Some("the monitor cannot be replaced at runtime"),
        }
    }

    /// The audit trail: every retained [`Event::Audit`] record, in order.
    ///
    /// This is a filtered **view** of the journal. Under the journal's
    /// capacity bound the oldest entries may have been evicted; use
    /// [`HostMonitor::audit_len`] for the exact lifetime count.
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.journal
            .snapshot()
            .into_iter()
            .filter_map(|r| match r.event {
                Event::Audit {
                    caller,
                    op,
                    allowed,
                } => Some(AuditEntry {
                    caller,
                    op,
                    allowed,
                }),
                _ => None,
            })
            .collect()
    }

    /// Lifetime number of audited decisions — O(1), no cloning, and exact
    /// even after old records are evicted from the journal.
    pub fn audit_len(&self) -> usize {
        (self.journal.counter(Counter::AuditAllowed) + self.journal.counter(Counter::AuditDenied))
            as usize
    }

    /// Lifetime number of denials — O(1) counter read.
    pub fn denial_count(&self) -> usize {
        self.journal.counter(Counter::AuditDenied) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_domain_is_trusted() {
        let m = HostMonitor::new();
        for op in [
            SystemOp::CreateThread {
                target: DomainId(5),
            },
            SystemOp::ManipulateDomain {
                target: DomainId(5),
            },
            SystemOp::MutateRegistry,
            SystemOp::MutateDomainDatabase,
            SystemOp::DispatchAgent,
        ] {
            m.check(DomainId::SERVER, op).unwrap();
        }
    }

    #[test]
    fn agents_manage_only_their_own_threads() {
        let m = HostMonitor::new();
        let me = DomainId(3);
        let other = DomainId(4);
        m.check(me, SystemOp::CreateThread { target: me }).unwrap();
        m.check(me, SystemOp::ManipulateDomain { target: me })
            .unwrap();
        assert!(m
            .check(me, SystemOp::CreateThread { target: other })
            .is_err());
        assert!(m
            .check(me, SystemOp::ManipulateDomain { target: other })
            .is_err());
        // In particular, an agent cannot act on the SERVER domain.
        assert!(m
            .check(
                me,
                SystemOp::ManipulateDomain {
                    target: DomainId::SERVER
                }
            )
            .is_err());
    }

    #[test]
    fn domain_database_writes_are_server_only() {
        let m = HostMonitor::new();
        assert!(m
            .check(DomainId(1), SystemOp::MutateDomainDatabase)
            .is_err());
        m.check(DomainId::SERVER, SystemOp::MutateDomainDatabase)
            .unwrap();
    }

    #[test]
    fn registry_mutation_open_to_agents() {
        // Dynamic extension (Section 5.5) requires visiting agents to be
        // able to register resources; fine-grained ownership control is the
        // registry's job.
        let m = HostMonitor::new();
        m.check(DomainId(2), SystemOp::MutateRegistry).unwrap();
    }

    #[test]
    fn dispatch_policy_configurable() {
        let open = HostMonitor::new();
        open.check(DomainId(1), SystemOp::DispatchAgent).unwrap();
        let strict = HostMonitor::no_agent_dispatch();
        assert!(strict.check(DomainId(1), SystemOp::DispatchAgent).is_err());
        // Server dispatch is always allowed.
        strict
            .check(DomainId::SERVER, SystemOp::DispatchAgent)
            .unwrap();
    }

    #[test]
    fn nobody_replaces_the_monitor() {
        let m = HostMonitor::new();
        assert!(m.check(DomainId(1), SystemOp::ReplaceMonitor).is_err());
        assert!(m.check(DomainId::SERVER, SystemOp::ReplaceMonitor).is_err());
    }

    #[test]
    fn audit_log_records_everything() {
        let m = HostMonitor::new();
        m.check(DomainId::SERVER, SystemOp::MutateRegistry).unwrap();
        let _ = m.check(DomainId(1), SystemOp::MutateDomainDatabase);
        let log = m.audit_log();
        assert_eq!(log.len(), 2);
        assert!(log[0].allowed);
        assert!(!log[1].allowed);
        assert_eq!(m.audit_len(), 2);
        assert_eq!(m.denial_count(), 1);
    }

    #[test]
    fn audit_goes_to_the_shared_journal() {
        let journal = Arc::new(Journal::new());
        let m = HostMonitor::with_journal(Arc::clone(&journal), true);
        let _ = m.check(DomainId(9), SystemOp::MutateDomainDatabase);
        assert_eq!(journal.counter(Counter::AuditDenied), 1);
        let snap = journal.snapshot();
        assert!(matches!(
            snap[0].event,
            Event::Audit {
                caller: DomainId(9),
                allowed: false,
                ..
            }
        ));
    }

    #[test]
    fn audit_len_is_exact_past_journal_capacity() {
        let journal = Arc::new(Journal::with_capacity(8));
        let m = HostMonitor::with_journal(journal, true);
        for _ in 0..100 {
            m.check(DomainId::SERVER, SystemOp::MutateRegistry).unwrap();
        }
        // The journal retains only 8 records, but the counters are exact.
        assert_eq!(m.audit_len(), 100);
        assert_eq!(m.audit_log().len(), 8);
        assert_eq!(m.denial_count(), 0);
    }

    #[test]
    fn violation_display_is_informative() {
        let m = HostMonitor::new();
        let err = m
            .check(DomainId(7), SystemOp::MutateDomainDatabase)
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("domain[7]"));
        assert!(text.contains("server domain"));
    }
}
