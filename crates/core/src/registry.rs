//! The resource registry and the dynamic binding protocol (paper Fig. 6).
//!
//! The six steps, as implemented across this crate and `ajanta-runtime`:
//!
//! 1. **resource registers itself** — [`ResourceRegistry::register`],
//!    mediated by the [`HostMonitor`] and recorded with ownership so
//!    nobody else can modify the entry;
//! 2. **agent requests a resource** — the agent environment's
//!    `get_resource` primitive (in `ajanta-runtime`) calls
//!    [`ResourceRegistry::bind`];
//! 3. **server looks up resource in registry** — the name lookup inside
//!    `bind`;
//! 4. **`get_proxy` method is invoked** — the upcall to the resource's
//!    [`AccessProtocol::get_proxy`], executing the resource's embedded
//!    policy against the requester's verified identity and rights;
//! 5. **proxy object is returned to agent** — `bind`'s return value;
//! 6. **agent accesses resource via proxy** — [`ResourceProxy::invoke`].
//!
//! Step 4 runs on the requesting agent's thread in the paper; here it runs
//! on whatever thread calls `bind` — the agent's hosting thread in the
//! runtime — with the same trust story: `get_proxy` receives only the
//! verified [`Requester`] facts, never agent-controlled data.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ajanta_naming::{NameRegistry, RegistryError, Urn};
use parking_lot::RwLock;

use crate::domain::DomainId;
use crate::monitor::{HostMonitor, SystemOp, Violation};
use crate::proxy::{AccessError, ResourceProxy};
use crate::resource::{AccessProtocol, Requester};

/// How many independent locks the object map is spread over. Binds from
/// concurrent agent threads contend only when their resources hash to the
/// same shard, so lookup throughput scales with thread count.
const SHARDS: usize = 16;

/// Hash a shard key; callers reduce modulo their own shard count.
pub(crate) fn key_hash<K: Hash + ?Sized>(key: &K) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish() as usize
}

/// Why a bind (or registration) failed.
#[derive(Debug)]
pub enum BindError {
    /// The reference monitor refused the registry mutation.
    Monitor(Violation),
    /// Name-level registration failed (duplicate, not owner, ...).
    Name(RegistryError),
    /// No resource is registered under this name.
    NotFound(Urn),
    /// The resource's access protocol refused (or a proxy error).
    Denied(AccessError),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::Monitor(v) => write!(f, "{v}"),
            BindError::Name(e) => write!(f, "{e}"),
            BindError::NotFound(n) => write!(f, "no resource registered as {n}"),
            BindError::Denied(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BindError {}

impl From<Violation> for BindError {
    fn from(v: Violation) -> Self {
        BindError::Monitor(v)
    }
}

impl From<RegistryError> for BindError {
    fn from(e: RegistryError) -> Self {
        BindError::Name(e)
    }
}

impl From<AccessError> for BindError {
    fn from(e: AccessError) -> Self {
        BindError::Denied(e)
    }
}

/// The server's resource registry.
///
/// The object map — the structure every `bind` reads — is split over
/// [`SHARDS`] independently locked hash maps keyed by the resource URN's
/// hash, so concurrent binds from many agent threads do not serialize on
/// one registry-wide lock. The name directory (registration metadata,
/// cold path) keeps a single lock.
pub struct ResourceRegistry {
    names: RwLock<NameRegistry>,
    objects: [RwLock<HashMap<Urn, Arc<dyn AccessProtocol>>>; SHARDS],
}

impl Default for ResourceRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ResourceRegistry {
            names: RwLock::new(NameRegistry::new()),
            objects: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    fn shard(&self, name: &Urn) -> &RwLock<HashMap<Urn, Arc<dyn AccessProtocol>>> {
        &self.objects[key_hash(name) % SHARDS]
    }

    /// Step 1: registers `resource` on behalf of `registrar` (the domain
    /// performing the call — the server itself, or a visiting agent
    /// installing a resource dynamically, Section 5.5).
    pub fn register(
        &self,
        monitor: &HostMonitor,
        caller: DomainId,
        registrar: &Urn,
        resource: Arc<dyn AccessProtocol>,
    ) -> Result<(), BindError> {
        monitor.check(caller, SystemOp::MutateRegistry)?;
        let name = resource.name().clone();
        let description = format!("resource owned by {}", resource.owner());
        {
            let mut names = self.names.write();
            names.register(name.clone(), registrar.clone(), description)?;
        }
        self.shard(&name).write().insert(name, resource);
        Ok(())
    }

    /// Removes a registration; only the original registrar may.
    pub fn unregister(
        &self,
        monitor: &HostMonitor,
        caller: DomainId,
        registrar: &Urn,
        name: &Urn,
    ) -> Result<Arc<dyn AccessProtocol>, BindError> {
        monitor.check(caller, SystemOp::MutateRegistry)?;
        self.names.write().unregister(name, registrar)?;
        self.shard(name)
            .write()
            .remove(name)
            .ok_or_else(|| BindError::NotFound(name.clone()))
    }

    /// Steps 3–5: looks the resource up and upcalls its `get_proxy`.
    pub fn bind(
        &self,
        requester: &Requester,
        name: &Urn,
        now: u64,
    ) -> Result<ResourceProxy, BindError> {
        let resource = {
            // Only this name's shard is locked: binds for resources on
            // other shards proceed concurrently.
            let objects = self.shard(name).read();
            objects
                .get(name)
                .cloned()
                .ok_or_else(|| BindError::NotFound(name.clone()))?
        };
        // The upcall (step 4) runs outside the registry lock: a slow or
        // reentrant get_proxy must not block other binds.
        let proxy = resource.get_proxy(requester, now)?;
        Ok(proxy)
    }

    /// Directory listing (names only — never the objects).
    pub fn list(&self) -> Vec<Urn> {
        self.names.read().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.objects.iter().map(|s| s.read().len()).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.objects.iter().all(|s| s.read().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{Meter, ProxyControl};
    use crate::resource::{MethodSpec, Resource, ResourceError};
    use crate::rights::Rights;
    use ajanta_vm::{Ty, Value};

    /// A resource whose get_proxy enables exactly the methods the
    /// requester's rights permit, denying when none are.
    struct Gate {
        name: Urn,
        owner: Urn,
    }

    impl Resource for Gate {
        fn name(&self) -> &Urn {
            &self.name
        }
        fn owner(&self) -> &Urn {
            &self.owner
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![
                MethodSpec::new("query", [], Ty::Int),
                MethodSpec::new("buy", [], Ty::Int),
            ]
        }
        fn invoke(&self, method: &str, _args: &[Value]) -> Result<Value, ResourceError> {
            match method {
                "query" => Ok(Value::Int(1)),
                "buy" => Ok(Value::Int(2)),
                other => Err(ResourceError::NoSuchMethod(other.into())),
            }
        }
    }

    impl AccessProtocol for Gate {
        fn get_proxy(
            self: Arc<Self>,
            requester: &Requester,
            _now: u64,
        ) -> Result<ResourceProxy, AccessError> {
            let table = self.method_table();
            let enabled: Vec<_> = table
                .iter()
                .filter(|(_, name)| requester.rights.permits(self.name(), name))
                .map(|(id, _)| id)
                .collect();
            if enabled.is_empty() {
                return Err(AccessError::PolicyDenied {
                    resource: self.name().clone(),
                    reason: "no methods permitted".into(),
                });
            }
            let control =
                ProxyControl::new(requester.domain, [], table, enabled, None, Meter::off());
            Ok(ResourceProxy::new(self, control))
        }
    }

    fn gate(name: &str) -> Arc<Gate> {
        Arc::new(Gate {
            name: Urn::resource("acme.com", [name]).unwrap(),
            owner: Urn::owner("acme.com", ["admin"]).unwrap(),
        })
    }

    fn requester(rights: Rights) -> Requester {
        Requester {
            agent: Urn::agent("umn.edu", ["a"]).unwrap(),
            owner: Urn::owner("umn.edu", ["alice"]).unwrap(),
            domain: DomainId(1),
            rights,
        }
    }

    fn server_urn() -> Urn {
        Urn::server("acme.com", ["s1"]).unwrap()
    }

    #[test]
    fn full_six_step_protocol() {
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        let g = gate("catalog");
        let rname = g.name().clone();

        // Step 1.
        reg.register(&monitor, DomainId::SERVER, &server_urn(), g)
            .unwrap();
        assert_eq!(reg.len(), 1);

        // Steps 2–5.
        let rq = requester(Rights::none().grant_method(rname.clone(), "query"));
        let proxy = reg.bind(&rq, &rname, 0).unwrap();

        // Step 6.
        assert_eq!(
            proxy.invoke(rq.domain, "query", &[], 0).unwrap(),
            Value::Int(1)
        );
        // "buy" was not permitted, so the proxy has it disabled.
        assert_eq!(
            proxy.invoke(rq.domain, "buy", &[], 0),
            Err(AccessError::MethodDisabled("buy".into()))
        );
    }

    #[test]
    fn bind_unknown_name_fails() {
        let reg = ResourceRegistry::new();
        let rq = requester(Rights::all());
        let missing = Urn::resource("acme.com", ["ghost"]).unwrap();
        assert!(matches!(
            reg.bind(&rq, &missing, 0),
            Err(BindError::NotFound(_))
        ));
    }

    #[test]
    fn policy_denial_propagates() {
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        let g = gate("catalog");
        let rname = g.name().clone();
        reg.register(&monitor, DomainId::SERVER, &server_urn(), g)
            .unwrap();
        let rq = requester(Rights::none());
        assert!(matches!(
            reg.bind(&rq, &rname, 0),
            Err(BindError::Denied(AccessError::PolicyDenied { .. }))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        reg.register(&monitor, DomainId::SERVER, &server_urn(), gate("catalog"))
            .unwrap();
        assert!(matches!(
            reg.register(&monitor, DomainId::SERVER, &server_urn(), gate("catalog")),
            Err(BindError::Name(RegistryError::AlreadyRegistered(_)))
        ));
    }

    #[test]
    fn agents_can_register_but_not_unregister_others_entries() {
        // Dynamic extension: a visiting agent installs a resource...
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        let agent_urn = Urn::agent("umn.edu", ["installer"]).unwrap();
        let agent_domain = DomainId(5);
        reg.register(&monitor, agent_domain, &agent_urn, gate("installed"))
            .unwrap();

        // ...a different principal cannot remove it...
        let eve = Urn::agent("evil.org", ["eve"]).unwrap();
        let name = Urn::resource("acme.com", ["installed"]).unwrap();
        assert!(matches!(
            reg.unregister(&monitor, DomainId(6), &eve, &name),
            Err(BindError::Name(RegistryError::NotOwner { .. }))
        ));

        // ...but the installer can.
        reg.unregister(&monitor, agent_domain, &agent_urn, &name)
            .unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn installed_resource_outlives_installer() {
        // The paper's scenario: agent installs a resource, terminates;
        // later agents bind to it.
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        let installer = Urn::agent("umn.edu", ["installer"]).unwrap();
        {
            let g = gate("persistent");
            reg.register(&monitor, DomainId(5), &installer, g).unwrap();
            // Installer's domain is evicted; registry entry remains.
        }
        let rname = Urn::resource("acme.com", ["persistent"]).unwrap();
        let rq = requester(Rights::on_resource(rname.clone()));
        let proxy = reg.bind(&rq, &rname, 0).unwrap();
        assert_eq!(
            proxy.invoke(rq.domain, "query", &[], 0).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn list_names_only() {
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        reg.register(&monitor, DomainId::SERVER, &server_urn(), gate("b"))
            .unwrap();
        reg.register(&monitor, DomainId::SERVER, &server_urn(), gate("a"))
            .unwrap();
        let names: Vec<String> = reg.list().iter().map(|n| n.leaf().to_string()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn per_agent_proxies_are_independent() {
        // "A separate proxy is created for each agent": revoking one
        // agent's proxy must not affect another's.
        let monitor = HostMonitor::new();
        let reg = ResourceRegistry::new();
        let g = gate("catalog");
        let rname = g.name().clone();
        reg.register(&monitor, DomainId::SERVER, &server_urn(), g)
            .unwrap();

        let rq1 = Requester {
            domain: DomainId(1),
            ..requester(Rights::on_resource(rname.clone()))
        };
        let rq2 = Requester {
            domain: DomainId(2),
            ..requester(Rights::on_resource(rname.clone()))
        };
        let p1 = reg.bind(&rq1, &rname, 0).unwrap();
        let p2 = reg.bind(&rq2, &rname, 0).unwrap();

        p1.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(
            p1.invoke(rq1.domain, "query", &[], 0),
            Err(AccessError::Revoked)
        );
        // Agent 2 is unaffected.
        assert_eq!(
            p2.invoke(rq2.domain, "query", &[], 0).unwrap(),
            Value::Int(1)
        );
    }
}
