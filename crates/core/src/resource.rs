//! The `Resource` and `AccessProtocol` interfaces (paper Figs. 3 and 7).
//!
//! *"A resource is an object that acts as an interface to some service or
//! information available at the host"* (Section 4). The system-defined
//! interface provides *"generic functionality for all resources, such as
//! resource naming, ownership, charging protocols"* (Fig. 3); each
//! application resource also implements the access protocol — a
//! `get_proxy` method that consults policy and manufactures a restricted
//! proxy for the requesting agent (Fig. 7).
//!
//! Agents are mobile programs, so the general invocation surface is
//! dynamic: methods are named, arguments are [`Value`]s. (The statically
//! typed face of the same design — the paper's Java code — is mirrored in
//! [`crate::buffer`], whose `BufferProxy` is hand-written exactly like
//! Fig. 5.)

use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_vm::{Ty, Value};

use crate::domain::DomainId;
use crate::proxy::ResourceProxy;
use crate::rights::Rights;

/// Signature of one resource method, used for interface discovery and for
/// checking invocation arity/types before dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name (unique per resource).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

impl MethodSpec {
    /// A method spec with no parameters.
    pub fn new(name: impl Into<String>, params: impl Into<Vec<Ty>>, ret: Ty) -> Self {
        MethodSpec {
            name: name.into(),
            params: params.into(),
            ret,
        }
    }
}

/// Failures raised by resource method bodies (distinct from access-control
/// failures, which are [`crate::proxy::AccessError`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// No such method on this resource.
    NoSuchMethod(String),
    /// Argument count or types did not match the method spec.
    BadArguments {
        /// Method that was invoked.
        method: String,
        /// What went wrong.
        detail: String,
    },
    /// The method ran and failed (application-defined).
    Failed(String),
    /// The method cannot complete now (e.g. take on an empty buffer) —
    /// agents may retry.
    WouldBlock,
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            ResourceError::BadArguments { method, detail } => {
                write!(f, "bad arguments to {method}: {detail}")
            }
            ResourceError::Failed(m) => write!(f, "resource operation failed: {m}"),
            ResourceError::WouldBlock => f.write_str("operation would block"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// The generic resource interface (Fig. 3's `Resource` +
/// `ResourceImpl`): naming, ownership, interface discovery, invocation.
pub trait Resource: Send + Sync {
    /// The resource's global name.
    fn name(&self) -> &Urn;

    /// The owning principal (controls registry entries and proxy
    /// management rights).
    fn owner(&self) -> &Urn;

    /// The callable interface.
    fn methods(&self) -> Vec<MethodSpec>;

    /// Invokes `method`. Implementations are responsible for validating
    /// their own arguments — begin with [`Resource::check_args`] — since
    /// proxies deliberately add only access-control checks, not argument
    /// checks (a single validation point keeps the per-call proxy
    /// overhead to exactly the security cost).
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError>;

    /// Checks `args` against the spec for `method`. Provided.
    fn check_args(&self, method: &str, args: &[Value]) -> Result<(), ResourceError> {
        let specs = self.methods();
        let spec = specs
            .iter()
            .find(|m| m.name == method)
            .ok_or_else(|| ResourceError::NoSuchMethod(method.to_string()))?;
        if args.len() != spec.params.len() {
            return Err(ResourceError::BadArguments {
                method: method.to_string(),
                detail: format!("expected {} args, got {}", spec.params.len(), args.len()),
            });
        }
        for (i, (a, &p)) in args.iter().zip(&spec.params).enumerate() {
            if a.ty() != p {
                return Err(ResourceError::BadArguments {
                    method: method.to_string(),
                    detail: format!("arg {i} expected {p}, got {}", a.ty()),
                });
            }
        }
        Ok(())
    }
}

/// Identity of a requesting agent as seen by `get_proxy`: the validated
/// facts the resource's embedded policy can rely on.
#[derive(Debug, Clone)]
pub struct Requester {
    /// The agent's name (from verified credentials).
    pub agent: Urn,
    /// Its owner.
    pub owner: Urn,
    /// Its protection domain at this server.
    pub domain: DomainId,
    /// The agent's **effective rights** (owner delegation ∩ endorsements ∩
    /// server policy), as computed at admission.
    pub rights: Rights,
}

/// The access protocol (Fig. 7): how a resource manufactures a restricted
/// proxy for an agent.
///
/// *"This method is responsible for creating the proxy and selectively
/// disabling some of its methods, based on the calling agent's
/// credentials."* (Section 5.5)
pub trait AccessProtocol: Resource {
    /// Creates a proxy for `requester`, or refuses. `now` is the current
    /// virtual time, used to stamp expiry.
    fn get_proxy(
        self: Arc<Self>,
        requester: &Requester,
        now: u64,
    ) -> Result<ResourceProxy, crate::proxy::AccessError>;
}

/// Object-safe alias for what the registry stores.
pub trait ProtectedResource: AccessProtocol {}
impl<T: AccessProtocol + ?Sized> ProtectedResource for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal resource used to exercise the provided methods.
    struct Echo {
        name: Urn,
        owner: Urn,
    }

    impl Resource for Echo {
        fn name(&self) -> &Urn {
            &self.name
        }
        fn owner(&self) -> &Urn {
            &self.owner
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![
                MethodSpec::new("echo", [Ty::Bytes], Ty::Bytes),
                MethodSpec::new("length", [Ty::Bytes], Ty::Int),
            ]
        }
        fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
            self.check_args(method, args)?;
            match method {
                "echo" => Ok(args[0].clone()),
                "length" => Ok(Value::Int(args[0].as_bytes().unwrap().len() as i64)),
                _ => Err(ResourceError::NoSuchMethod(method.into())),
            }
        }
    }

    fn echo() -> Echo {
        Echo {
            name: Urn::resource("x.org", ["echo"]).unwrap(),
            owner: Urn::owner("x.org", ["admin"]).unwrap(),
        }
    }

    #[test]
    fn invoke_dispatches_by_name() {
        let e = echo();
        assert_eq!(
            e.invoke("echo", &[Value::str("hi")]).unwrap(),
            Value::str("hi")
        );
        assert_eq!(
            e.invoke("length", &[Value::str("hello")]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn unknown_method_rejected() {
        assert_eq!(
            echo().invoke("ghost", &[]),
            Err(ResourceError::NoSuchMethod("ghost".into()))
        );
    }

    #[test]
    fn arity_checked() {
        assert!(matches!(
            echo().invoke("echo", &[]),
            Err(ResourceError::BadArguments { .. })
        ));
        assert!(matches!(
            echo().invoke("echo", &[Value::str("a"), Value::str("b")]),
            Err(ResourceError::BadArguments { .. })
        ));
    }

    #[test]
    fn types_checked() {
        let err = echo().invoke("echo", &[Value::Int(1)]).unwrap_err();
        match err {
            ResourceError::BadArguments { detail, .. } => {
                assert!(detail.contains("expected bytes"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn method_specs_describe_interface() {
        let specs = echo().methods();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "echo");
        assert_eq!(specs[0].ret, Ty::Bytes);
    }
}
