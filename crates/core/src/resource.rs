//! The `Resource` and `AccessProtocol` interfaces (paper Figs. 3 and 7).
//!
//! *"A resource is an object that acts as an interface to some service or
//! information available at the host"* (Section 4). The system-defined
//! interface provides *"generic functionality for all resources, such as
//! resource naming, ownership, charging protocols"* (Fig. 3); each
//! application resource also implements the access protocol — a
//! `get_proxy` method that consults policy and manufactures a restricted
//! proxy for the requesting agent (Fig. 7).
//!
//! Agents are mobile programs, so the general invocation surface is
//! dynamic: methods are named, arguments are [`Value`]s. (The statically
//! typed face of the same design — the paper's Java code — is mirrored in
//! [`crate::buffer`], whose `BufferProxy` is hand-written exactly like
//! Fig. 5.)

use std::collections::HashMap;
use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_vm::{Ty, Value};

use crate::domain::DomainId;
use crate::proxy::ResourceProxy;
use crate::rights::Rights;

/// Interned identifier of one method within a resource interface.
///
/// Ids are assigned by the resource's [`MethodTable`] in declaration order
/// and are stable for the lifetime of the resource. All per-invocation
/// access machinery ([`crate::proxy::ProxyControl`], metering) operates on
/// ids, so the invoke fast path never touches a string; names are resolved
/// to ids once, at bind time (the paper's Fig. 6 step 4), and resolved back
/// only on cold paths (error messages, meter snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(pub u16);

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m#{}", self.0)
    }
}

/// The interned method universe of one resource interface: a bijection
/// between method names and dense [`MethodId`]s, built once per resource.
///
/// `id()` (name → id) is the bind-time direction; `name()` (id → name) is
/// an array index, so even cold-path reverse lookups never allocate.
#[derive(Debug, Default)]
pub struct MethodTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl MethodTable {
    /// Interns `names` in order. Duplicates keep their first id. Panics if
    /// the interface exceeds `u16::MAX` methods.
    pub fn new<I, S>(names: I) -> Arc<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut table = MethodTable::default();
        for name in names {
            let name = name.into();
            if table.index.contains_key(&name) {
                continue;
            }
            let id = u16::try_from(table.names.len()).expect("method table overflow");
            table.index.insert(name.clone(), id);
            table.names.push(name);
        }
        Arc::new(table)
    }

    /// Interns the names of `specs` (the common construction).
    pub fn from_specs(specs: &[MethodSpec]) -> Arc<Self> {
        Self::new(specs.iter().map(|s| s.name.clone()))
    }

    /// Resolves a method name to its id, if the interface has it.
    pub fn id(&self, name: &str) -> Option<MethodId> {
        self.index.get(name).copied().map(MethodId)
    }

    /// Resolves an id back to its name (an array index — no allocation).
    pub fn name(&self, id: MethodId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned methods.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interface has no methods.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (MethodId(i as u16), n.as_str()))
    }
}

/// Signature of one resource method, used for interface discovery and for
/// checking invocation arity/types before dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Method name (unique per resource).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

impl MethodSpec {
    /// A method spec with no parameters.
    pub fn new(name: impl Into<String>, params: impl Into<Vec<Ty>>, ret: Ty) -> Self {
        MethodSpec {
            name: name.into(),
            params: params.into(),
            ret,
        }
    }
}

/// Failures raised by resource method bodies (distinct from access-control
/// failures, which are [`crate::proxy::AccessError`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// No such method on this resource.
    NoSuchMethod(String),
    /// Argument count or types did not match the method spec.
    BadArguments {
        /// Method that was invoked.
        method: String,
        /// What went wrong.
        detail: String,
    },
    /// The method ran and failed (application-defined).
    Failed(String),
    /// The method cannot complete now (e.g. take on an empty buffer) —
    /// agents may retry.
    WouldBlock,
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            ResourceError::BadArguments { method, detail } => {
                write!(f, "bad arguments to {method}: {detail}")
            }
            ResourceError::Failed(m) => write!(f, "resource operation failed: {m}"),
            ResourceError::WouldBlock => f.write_str("operation would block"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// The generic resource interface (Fig. 3's `Resource` +
/// `ResourceImpl`): naming, ownership, interface discovery, invocation.
pub trait Resource: Send + Sync {
    /// The resource's global name.
    fn name(&self) -> &Urn;

    /// The owning principal (controls registry entries and proxy
    /// management rights).
    fn owner(&self) -> &Urn;

    /// The callable interface.
    fn methods(&self) -> Vec<MethodSpec>;

    /// The interned method universe of this interface. The default builds
    /// a fresh table from [`Resource::methods`]; resources on the hot path
    /// override it to return one table built at construction, so binding
    /// (name → id resolution) shares a single interning pass.
    fn method_table(&self) -> Arc<MethodTable> {
        MethodTable::from_specs(&self.methods())
    }

    /// Invokes `method`. Implementations are responsible for validating
    /// their own arguments — begin with [`Resource::check_args`] — since
    /// proxies deliberately add only access-control checks, not argument
    /// checks (a single validation point keeps the per-call proxy
    /// overhead to exactly the security cost).
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError>;

    /// Checks `args` against the spec for `method`. Provided.
    fn check_args(&self, method: &str, args: &[Value]) -> Result<(), ResourceError> {
        let specs = self.methods();
        let spec = specs
            .iter()
            .find(|m| m.name == method)
            .ok_or_else(|| ResourceError::NoSuchMethod(method.to_string()))?;
        if args.len() != spec.params.len() {
            return Err(ResourceError::BadArguments {
                method: method.to_string(),
                detail: format!("expected {} args, got {}", spec.params.len(), args.len()),
            });
        }
        for (i, (a, &p)) in args.iter().zip(&spec.params).enumerate() {
            if a.ty() != p {
                return Err(ResourceError::BadArguments {
                    method: method.to_string(),
                    detail: format!("arg {i} expected {p}, got {}", a.ty()),
                });
            }
        }
        Ok(())
    }
}

/// Identity of a requesting agent as seen by `get_proxy`: the validated
/// facts the resource's embedded policy can rely on.
#[derive(Debug, Clone)]
pub struct Requester {
    /// The agent's name (from verified credentials).
    pub agent: Urn,
    /// Its owner.
    pub owner: Urn,
    /// Its protection domain at this server.
    pub domain: DomainId,
    /// The agent's **effective rights** (owner delegation ∩ endorsements ∩
    /// server policy), as computed at admission.
    pub rights: Rights,
}

/// The access protocol (Fig. 7): how a resource manufactures a restricted
/// proxy for an agent.
///
/// *"This method is responsible for creating the proxy and selectively
/// disabling some of its methods, based on the calling agent's
/// credentials."* (Section 5.5)
pub trait AccessProtocol: Resource {
    /// Creates a proxy for `requester`, or refuses. `now` is the current
    /// virtual time, used to stamp expiry.
    fn get_proxy(
        self: Arc<Self>,
        requester: &Requester,
        now: u64,
    ) -> Result<ResourceProxy, crate::proxy::AccessError>;
}

/// Object-safe alias for what the registry stores.
pub trait ProtectedResource: AccessProtocol {}
impl<T: AccessProtocol + ?Sized> ProtectedResource for T {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal resource used to exercise the provided methods.
    struct Echo {
        name: Urn,
        owner: Urn,
    }

    impl Resource for Echo {
        fn name(&self) -> &Urn {
            &self.name
        }
        fn owner(&self) -> &Urn {
            &self.owner
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![
                MethodSpec::new("echo", [Ty::Bytes], Ty::Bytes),
                MethodSpec::new("length", [Ty::Bytes], Ty::Int),
            ]
        }
        fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
            self.check_args(method, args)?;
            match method {
                "echo" => Ok(args[0].clone()),
                "length" => Ok(Value::Int(args[0].as_bytes().unwrap().len() as i64)),
                _ => Err(ResourceError::NoSuchMethod(method.into())),
            }
        }
    }

    fn echo() -> Echo {
        Echo {
            name: Urn::resource("x.org", ["echo"]).unwrap(),
            owner: Urn::owner("x.org", ["admin"]).unwrap(),
        }
    }

    #[test]
    fn invoke_dispatches_by_name() {
        let e = echo();
        assert_eq!(
            e.invoke("echo", &[Value::str("hi")]).unwrap(),
            Value::str("hi")
        );
        assert_eq!(
            e.invoke("length", &[Value::str("hello")]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn unknown_method_rejected() {
        assert_eq!(
            echo().invoke("ghost", &[]),
            Err(ResourceError::NoSuchMethod("ghost".into()))
        );
    }

    #[test]
    fn arity_checked() {
        assert!(matches!(
            echo().invoke("echo", &[]),
            Err(ResourceError::BadArguments { .. })
        ));
        assert!(matches!(
            echo().invoke("echo", &[Value::str("a"), Value::str("b")]),
            Err(ResourceError::BadArguments { .. })
        ));
    }

    #[test]
    fn types_checked() {
        let err = echo().invoke("echo", &[Value::Int(1)]).unwrap_err();
        match err {
            ResourceError::BadArguments { detail, .. } => {
                assert!(detail.contains("expected bytes"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn method_specs_describe_interface() {
        let specs = echo().methods();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "echo");
        assert_eq!(specs[0].ret, Ty::Bytes);
    }

    #[test]
    fn method_table_interns_in_declaration_order() {
        let t = echo().method_table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.id("echo"), Some(MethodId(0)));
        assert_eq!(t.id("length"), Some(MethodId(1)));
        assert_eq!(t.id("ghost"), None);
        assert_eq!(t.name(MethodId(0)), Some("echo"));
        assert_eq!(t.name(MethodId(9)), None);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, [(MethodId(0), "echo"), (MethodId(1), "length")]);
    }

    #[test]
    fn method_table_dedups_keeping_first_id() {
        let t = MethodTable::new(["a", "b", "a", "c"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.id("a"), Some(MethodId(0)));
        assert_eq!(t.id("c"), Some(MethodId(2)));
    }
}
