//! Dynamically created, per-agent resource proxies (paper Fig. 5 and
//! Section 5.5) — the central artifact of the paper.
//!
//! *"When an agent first makes a request to access a resource, the server
//! consults the security policy and constructs a resource proxy, which is
//! an object with a safe interface to the resource. If the agent is not
//! trusted, certain operations on the resource may be disabled. A separate
//! proxy is created for each agent. The agent only has a reference to the
//! proxy, and its restricted interface ensures that the agent can only
//! access the resource in a safe manner."*
//!
//! Extensions implemented here, from Section 5.5's "Accounting and
//! Revocation":
//!
//! * **per-method enable/disable** — a disabled method raises a security
//!   exception (Fig. 5's `isEnabled` check);
//! * **usage metering and accounting** — invocation counts per method,
//!   per-method tariffs, and elapsed-time metering;
//! * **expiration** — after `not_after`, every invocation raises;
//! * **selective revocation** — the resource manager can invalidate the
//!   proxy, or revoke/add individual method permissions, at any time, via
//!   privileged methods guarded by a management ACL of protection domains;
//! * **identity-based capability confinement** — the proxy records the
//!   protection domain it was granted to and refuses invocations from any
//!   other domain, so passing the reference to another agent is useless
//!   (Gong's identity-based capabilities, the paper's citation [6]).
//!
//! The actual resource reference is private to the proxy (Rust privacy ≈
//! the paper's use of Java encapsulation): holding a [`ResourceProxy`]
//! gives no way to reach the underlying [`Resource`] object directly.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_vm::Value;
use parking_lot::RwLock;

use crate::domain::DomainId;
use crate::resource::{Resource, ResourceError};

/// Access-control failure raised by a proxy — the "security exception" of
/// Fig. 5 — or an application error forwarded from the resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The proxy was revoked by the resource manager.
    Revoked,
    /// The proxy expired.
    Expired {
        /// Expiry instant.
        not_after: u64,
        /// Invocation instant.
        now: u64,
    },
    /// The method is not in the enabled set.
    MethodDisabled(String),
    /// The caller is not the domain this capability was granted to.
    NotHolder {
        /// Domain the proxy was granted to.
        holder: DomainId,
        /// Domain that attempted the call.
        caller: DomainId,
    },
    /// The caller is not on the management ACL for privileged methods.
    ManagementDenied(DomainId),
    /// Access was denied at proxy-creation time by the embedded policy.
    PolicyDenied {
        /// Resource that refused.
        resource: Urn,
        /// Why.
        reason: String,
    },
    /// The resource method itself failed (application-level).
    Resource(ResourceError),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Revoked => f.write_str("proxy revoked"),
            AccessError::Expired { not_after, now } => {
                write!(f, "proxy expired at {not_after}, now {now}")
            }
            AccessError::MethodDisabled(m) => write!(f, "method disabled: {m}"),
            AccessError::NotHolder { holder, caller } => {
                write!(f, "capability held by {holder}, invoked from {caller}")
            }
            AccessError::ManagementDenied(d) => {
                write!(f, "{d} may not manage this proxy")
            }
            AccessError::PolicyDenied { resource, reason } => {
                write!(f, "access to {resource} denied: {reason}")
            }
            AccessError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AccessError {}

impl From<ResourceError> for AccessError {
    fn from(e: ResourceError) -> Self {
        AccessError::Resource(e)
    }
}

/// How usage is metered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeterMode {
    /// No metering (cheapest).
    #[default]
    Off,
    /// Count invocations per method and apply tariffs.
    Count,
    /// Count and also accumulate wall-clock execution time of the
    /// underlying method ("metering the elapsed time for method execution
    /// and then basing the charges on it").
    CountAndTime,
}

/// Accumulated usage for one proxy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeterReading {
    /// Successful invocations per method.
    pub per_method: BTreeMap<String, u64>,
    /// Total successful invocations.
    pub total: u64,
    /// Total charge under the configured tariffs.
    pub charge: u64,
    /// Accumulated method execution time (real nanoseconds), when
    /// time-metering is on.
    pub elapsed_ns: u64,
}

/// The metering state inside a proxy.
#[derive(Debug, Default)]
pub struct Meter {
    mode: MeterMode,
    /// Cost charged per successful call of each method; methods absent
    /// from the map cost `default_tariff`.
    tariffs: BTreeMap<String, u64>,
    default_tariff: u64,
    reading: RwLock<MeterReading>,
}

impl Meter {
    /// No metering.
    pub fn off() -> Self {
        Meter::default()
    }

    /// Invocation counting with a flat tariff.
    pub fn counting(default_tariff: u64) -> Self {
        Meter {
            mode: MeterMode::Count,
            default_tariff,
            ..Default::default()
        }
    }

    /// Counting plus elapsed-time accumulation.
    pub fn timed(default_tariff: u64) -> Self {
        Meter {
            mode: MeterMode::CountAndTime,
            default_tariff,
            ..Default::default()
        }
    }

    /// Sets a per-method tariff ("possibly assigning different costs to
    /// different methods").
    pub fn with_tariff(mut self, method: impl Into<String>, cost: u64) -> Self {
        self.tariffs.insert(method.into(), cost);
        self
    }

    /// The metering mode.
    pub fn mode(&self) -> MeterMode {
        self.mode
    }

    fn record(&self, method: &str, elapsed_ns: u64) {
        if self.mode == MeterMode::Off {
            return;
        }
        let cost = self
            .tariffs
            .get(method)
            .copied()
            .unwrap_or(self.default_tariff);
        let mut r = self.reading.write();
        *r.per_method.entry(method.to_string()).or_insert(0) += 1;
        r.total += 1;
        r.charge += cost;
        if self.mode == MeterMode::CountAndTime {
            r.elapsed_ns += elapsed_ns;
        }
    }

    /// Snapshot of the accumulated usage.
    pub fn reading(&self) -> MeterReading {
        self.reading.read().clone()
    }
}

/// The control block shared between a proxy and its resource manager.
///
/// The manager keeps an `Arc<ProxyControl>` after `get_proxy`, which is
/// what makes *"a resource manager can invalidate any of its currently
/// active proxies at any time it wishes"* work: revocation takes effect on
/// the very next invocation, with no cooperation from the agent.
#[derive(Debug)]
pub struct ProxyControl {
    /// Domain the capability was granted to.
    holder: DomainId,
    /// Domains allowed to call privileged (management) methods.
    managers: BTreeSet<DomainId>,
    enabled: RwLock<BTreeSet<String>>,
    not_after: RwLock<Option<u64>>,
    revoked: AtomicBool,
    meter: Meter,
}

impl ProxyControl {
    /// Creates a control block.
    ///
    /// * `holder` — the protection domain receiving the capability;
    /// * `managers` — domains allowed to revoke/adjust it (the resource
    ///   owner's domain; the server domain is always included);
    /// * `enabled` — initially enabled methods;
    /// * `not_after` — optional expiry;
    /// * `meter` — accounting configuration.
    pub fn new(
        holder: DomainId,
        managers: impl IntoIterator<Item = DomainId>,
        enabled: impl IntoIterator<Item = String>,
        not_after: Option<u64>,
        meter: Meter,
    ) -> Arc<Self> {
        let mut managers: BTreeSet<DomainId> = managers.into_iter().collect();
        managers.insert(DomainId::SERVER);
        Arc::new(ProxyControl {
            holder,
            managers,
            enabled: RwLock::new(enabled.into_iter().collect()),
            not_after: RwLock::new(not_after),
            revoked: AtomicBool::new(false),
            meter,
        })
    }

    /// The domain this capability belongs to.
    pub fn holder(&self) -> DomainId {
        self.holder
    }

    /// Pre-invocation checks, in a fixed order: revocation, expiry,
    /// confinement, enablement. Factored out so the typed proxies in
    /// [`crate::buffer`] and the generated proxies in [`crate::proxygen`]
    /// share exactly this logic.
    pub fn check(&self, caller: DomainId, method: &str, now: u64) -> Result<(), AccessError> {
        if self.revoked.load(Ordering::Acquire) {
            return Err(AccessError::Revoked);
        }
        if let Some(t) = *self.not_after.read() {
            if now > t {
                return Err(AccessError::Expired { not_after: t, now });
            }
        }
        if caller != self.holder {
            return Err(AccessError::NotHolder {
                holder: self.holder,
                caller,
            });
        }
        if !self.enabled.read().contains(method) {
            return Err(AccessError::MethodDisabled(method.to_string()));
        }
        Ok(())
    }

    /// Records one successful invocation in the meter.
    pub fn record_use(&self, method: &str, elapsed_ns: u64) {
        self.meter.record(method, elapsed_ns);
    }

    /// The meter (for reading accumulated charges).
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    fn require_manager(&self, caller: DomainId) -> Result<(), AccessError> {
        if self.managers.contains(&caller) {
            Ok(())
        } else {
            Err(AccessError::ManagementDenied(caller))
        }
    }

    /// Privileged: invalidates the proxy permanently.
    pub fn revoke(&self, caller: DomainId) -> Result<(), AccessError> {
        self.require_manager(caller)?;
        self.revoked.store(true, Ordering::Release);
        Ok(())
    }

    /// Privileged: removes one method from the enabled set ("selectively
    /// revoke ... permissions for specific methods of a given proxy").
    pub fn disable_method(&self, caller: DomainId, method: &str) -> Result<bool, AccessError> {
        self.require_manager(caller)?;
        Ok(self.enabled.write().remove(method))
    }

    /// Privileged: adds one method to the enabled set ("or add
    /// permissions").
    pub fn enable_method(
        &self,
        caller: DomainId,
        method: impl Into<String>,
    ) -> Result<bool, AccessError> {
        self.require_manager(caller)?;
        Ok(self.enabled.write().insert(method.into()))
    }

    /// Privileged: changes the expiry instant.
    pub fn set_expiry(&self, caller: DomainId, not_after: Option<u64>) -> Result<(), AccessError> {
        self.require_manager(caller)?;
        *self.not_after.write() = not_after;
        Ok(())
    }

    /// Whether the proxy has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Acquire)
    }

    /// Snapshot of currently enabled methods.
    pub fn enabled_methods(&self) -> Vec<String> {
        self.enabled.read().iter().cloned().collect()
    }
}

/// The proxy object handed to an agent (Fig. 5's `BufferProxy`,
/// generalized). The underlying resource reference is private.
#[derive(Clone)]
pub struct ResourceProxy {
    resource: Arc<dyn Resource>,
    control: Arc<ProxyControl>,
}

impl ResourceProxy {
    /// Assembles a proxy. Called from `get_proxy` implementations.
    pub fn new(resource: Arc<dyn Resource>, control: Arc<ProxyControl>) -> Self {
        ResourceProxy { resource, control }
    }

    /// The proxied resource's name (safe metadata, not the object).
    pub fn resource_name(&self) -> &Urn {
        self.resource.name()
    }

    /// The shared control block — the handle a resource manager retains
    /// for revocation and accounting. Management methods on it are
    /// ACL-guarded, so exposing it to the agent is harmless.
    pub fn control(&self) -> &Arc<ProxyControl> {
        &self.control
    }

    /// Invokes `method` through the proxy: access checks, dispatch,
    /// metering. Argument validation is the resource's own job (every
    /// [`Resource::invoke`] implementation begins with `check_args`), so
    /// the proxy adds **only** the access-control cost — which is what
    /// experiment X4 measures.
    ///
    /// `caller` is the invoking protection domain (supplied by the agent
    /// environment, never by agent code), `now` the current virtual time.
    pub fn invoke(
        &self,
        caller: DomainId,
        method: &str,
        args: &[Value],
        now: u64,
    ) -> Result<Value, AccessError> {
        self.control.check(caller, method, now)?;
        let timed = self.control.meter().mode() == MeterMode::CountAndTime;
        let start = timed.then(std::time::Instant::now);
        let result = self.resource.invoke(method, args)?;
        let elapsed = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
        self.control.record_use(method, elapsed);
        Ok(result)
    }
}

impl std::fmt::Debug for ResourceProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceProxy")
            .field("resource", self.resource.name())
            .field("holder", &self.control.holder())
            .field("revoked", &self.control.is_revoked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::MethodSpec;
    use ajanta_vm::Ty;

    /// A counter resource with get/add/reset.
    struct Counter {
        name: Urn,
        owner: Urn,
        value: RwLock<i64>,
    }

    impl Counter {
        fn new() -> Arc<Self> {
            Arc::new(Counter {
                name: Urn::resource("x.org", ["counter"]).unwrap(),
                owner: Urn::owner("x.org", ["admin"]).unwrap(),
                value: RwLock::new(0),
            })
        }
    }

    impl Resource for Counter {
        fn name(&self) -> &Urn {
            &self.name
        }
        fn owner(&self) -> &Urn {
            &self.owner
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![
                MethodSpec::new("get", [], Ty::Int),
                MethodSpec::new("add", [Ty::Int], Ty::Int),
                MethodSpec::new("reset", [], Ty::Int),
            ]
        }
        fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
            self.check_args(method, args)?;
            match method {
                "get" => Ok(Value::Int(*self.value.read())),
                "add" => {
                    let mut v = self.value.write();
                    *v += args[0].as_int().expect("checked");
                    Ok(Value::Int(*v))
                }
                "reset" => {
                    *self.value.write() = 0;
                    Ok(Value::Int(0))
                }
                other => Err(ResourceError::NoSuchMethod(other.into())),
            }
        }
    }

    const AGENT: DomainId = DomainId(7);
    const OTHER: DomainId = DomainId(8);

    fn proxy(enabled: &[&str], not_after: Option<u64>, meter: Meter) -> ResourceProxy {
        let control = ProxyControl::new(
            AGENT,
            [],
            enabled.iter().map(|s| s.to_string()),
            not_after,
            meter,
        );
        ResourceProxy::new(Counter::new(), control)
    }

    #[test]
    fn enabled_methods_pass_through() {
        let p = proxy(&["get", "add"], None, Meter::off());
        assert_eq!(p.invoke(AGENT, "add", &[Value::Int(5)], 0).unwrap(), Value::Int(5));
        assert_eq!(p.invoke(AGENT, "get", &[], 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn disabled_method_raises_security_exception() {
        let p = proxy(&["get"], None, Meter::off());
        assert_eq!(
            p.invoke(AGENT, "reset", &[], 0),
            Err(AccessError::MethodDisabled("reset".into()))
        );
        // "get" still works — restriction is per-method.
        p.invoke(AGENT, "get", &[], 0).unwrap();
    }

    #[test]
    fn expiry_enforced_per_invocation() {
        let p = proxy(&["get"], Some(100), Meter::off());
        p.invoke(AGENT, "get", &[], 100).unwrap();
        assert_eq!(
            p.invoke(AGENT, "get", &[], 101),
            Err(AccessError::Expired {
                not_after: 100,
                now: 101
            })
        );
    }

    #[test]
    fn confinement_rejects_other_domains() {
        let p = proxy(&["get"], None, Meter::off());
        // The proxy reference is Clone; leak it to another agent.
        let leaked = p.clone();
        assert_eq!(
            leaked.invoke(OTHER, "get", &[], 0),
            Err(AccessError::NotHolder {
                holder: AGENT,
                caller: OTHER
            })
        );
        // Original holder unaffected.
        p.invoke(AGENT, "get", &[], 0).unwrap();
    }

    #[test]
    fn revocation_is_immediate_and_permanent() {
        let p = proxy(&["get"], None, Meter::off());
        p.invoke(AGENT, "get", &[], 0).unwrap();
        p.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(p.invoke(AGENT, "get", &[], 0), Err(AccessError::Revoked));
        assert!(p.control().is_revoked());
    }

    #[test]
    fn selective_method_revocation_and_addition() {
        let p = proxy(&["get", "add"], None, Meter::off());
        assert!(p.control().disable_method(DomainId::SERVER, "add").unwrap());
        assert_eq!(
            p.invoke(AGENT, "add", &[Value::Int(1)], 0),
            Err(AccessError::MethodDisabled("add".into()))
        );
        assert!(p.control().enable_method(DomainId::SERVER, "reset").unwrap());
        p.invoke(AGENT, "reset", &[], 0).unwrap();
        // Enabled set reflects the changes.
        assert_eq!(p.control().enabled_methods(), ["get", "reset"]);
    }

    #[test]
    fn management_requires_acl_membership() {
        let p = proxy(&["get"], None, Meter::off());
        // The holding agent itself is NOT a manager.
        assert_eq!(
            p.control().revoke(AGENT),
            Err(AccessError::ManagementDenied(AGENT))
        );
        assert_eq!(
            p.control().disable_method(OTHER, "get"),
            Err(AccessError::ManagementDenied(OTHER))
        );
        assert_eq!(
            p.control().set_expiry(AGENT, Some(5)),
            Err(AccessError::ManagementDenied(AGENT))
        );
        // Proxy still live.
        p.invoke(AGENT, "get", &[], 0).unwrap();
    }

    #[test]
    fn extra_manager_domains_work() {
        let manager = DomainId(99);
        let control = ProxyControl::new(AGENT, [manager], ["get".to_string()], None, Meter::off());
        let p = ResourceProxy::new(Counter::new(), control);
        p.control().revoke(manager).unwrap();
        assert!(p.control().is_revoked());
    }

    #[test]
    fn set_expiry_takes_effect() {
        let p = proxy(&["get"], None, Meter::off());
        p.control().set_expiry(DomainId::SERVER, Some(10)).unwrap();
        assert!(matches!(
            p.invoke(AGENT, "get", &[], 11),
            Err(AccessError::Expired { .. })
        ));
        p.control().set_expiry(DomainId::SERVER, None).unwrap();
        p.invoke(AGENT, "get", &[], 11).unwrap();
    }

    #[test]
    fn counting_meter_accumulates_per_method_and_tariffs() {
        let meter = Meter::counting(1).with_tariff("add", 5);
        let p = proxy(&["get", "add"], None, meter);
        p.invoke(AGENT, "get", &[], 0).unwrap();
        p.invoke(AGENT, "add", &[Value::Int(1)], 0).unwrap();
        p.invoke(AGENT, "add", &[Value::Int(1)], 0).unwrap();
        let r = p.control().meter().reading();
        assert_eq!(r.total, 3);
        assert_eq!(r.per_method["get"], 1);
        assert_eq!(r.per_method["add"], 2);
        assert_eq!(r.charge, 1 + 5 + 5);
        assert_eq!(r.elapsed_ns, 0); // counting mode does not time
    }

    #[test]
    fn denied_calls_are_not_charged() {
        let p = proxy(&["get"], None, Meter::counting(1));
        let _ = p.invoke(AGENT, "reset", &[], 0);
        let _ = p.invoke(OTHER, "get", &[], 0);
        assert_eq!(p.control().meter().reading().total, 0);
    }

    #[test]
    fn failed_resource_calls_are_not_charged() {
        let p = proxy(&["add"], None, Meter::counting(1));
        // Wrong arity: resource-level failure after access checks pass.
        let err = p.invoke(AGENT, "add", &[], 0).unwrap_err();
        assert!(matches!(err, AccessError::Resource(_)));
        assert_eq!(p.control().meter().reading().total, 0);
    }

    #[test]
    fn timed_meter_accumulates_elapsed() {
        let p = proxy(&["get"], None, Meter::timed(0));
        for _ in 0..50 {
            p.invoke(AGENT, "get", &[], 0).unwrap();
        }
        let r = p.control().meter().reading();
        assert_eq!(r.total, 50);
        assert!(r.elapsed_ns > 0, "elapsed time should accumulate");
    }

    #[test]
    fn check_order_revocation_before_confinement() {
        // A revoked proxy reports Revoked even to a non-holder — no
        // information leak about holders, and deterministic ordering.
        let p = proxy(&["get"], None, Meter::off());
        p.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(p.invoke(OTHER, "get", &[], 0), Err(AccessError::Revoked));
    }

    #[test]
    fn argument_checks_happen_after_access_checks() {
        let p = proxy(&["add"], None, Meter::off());
        // Bad args from the holder: resource error.
        assert!(matches!(
            p.invoke(AGENT, "add", &[Value::str("x")], 0),
            Err(AccessError::Resource(ResourceError::BadArguments { .. }))
        ));
        // Bad args from a non-holder: confinement error, args never seen.
        assert!(matches!(
            p.invoke(OTHER, "add", &[Value::str("x")], 0),
            Err(AccessError::NotHolder { .. })
        ));
    }
}
