//! Dynamically created, per-agent resource proxies (paper Fig. 5 and
//! Section 5.5) — the central artifact of the paper.
//!
//! *"When an agent first makes a request to access a resource, the server
//! consults the security policy and constructs a resource proxy, which is
//! an object with a safe interface to the resource. If the agent is not
//! trusted, certain operations on the resource may be disabled. A separate
//! proxy is created for each agent. The agent only has a reference to the
//! proxy, and its restricted interface ensures that the agent can only
//! access the resource in a safe manner."*
//!
//! Extensions implemented here, from Section 5.5's "Accounting and
//! Revocation":
//!
//! * **per-method enable/disable** — a disabled method raises a security
//!   exception (Fig. 5's `isEnabled` check);
//! * **usage metering and accounting** — invocation counts per method,
//!   per-method tariffs, and elapsed-time metering;
//! * **expiration** — after `not_after`, every invocation raises;
//! * **selective revocation** — the resource manager can invalidate the
//!   proxy, or revoke/add individual method permissions, at any time, via
//!   privileged methods guarded by a management ACL of protection domains;
//! * **identity-based capability confinement** — the proxy records the
//!   protection domain it was granted to and refuses invocations from any
//!   other domain, so passing the reference to another agent is useless
//!   (Gong's identity-based capabilities, the paper's citation [6]).
//!
//! # The interned-method fast path
//!
//! The paper's performance claim (Section 5.4) is that a proxy amortizes
//! the identity → rights evaluation, so each invocation costs barely more
//! than a direct call. To honor that, every per-invocation structure here
//! is keyed by [`MethodId`] and backed by atomics:
//!
//! * the enabled set is an `AtomicU64` **bitmask** for method ids < 64
//!   (interfaces wider than 64 methods spill the remainder into an
//!   `RwLock` side set — the lock is consulted only for ids ≥ 64, so
//!   ordinary interfaces never touch it);
//! * expiry is an `AtomicU64` with `u64::MAX` meaning "never expires", so
//!   the check is one load and one compare — no `Option`, no lock;
//! * the meter is **bound** at proxy-creation time ([`Meter`] is the
//!   string-keyed builder; [`BoundMeter`] holds a per-id tariff array and
//!   per-id `AtomicU64` counters).
//!
//! [`ProxyControl::check_id`] + [`BoundMeter`] recording therefore perform
//! **no heap allocation and take no lock** on the grant path. The
//! string-keyed methods ([`ProxyControl::check`], enable/disable by name)
//! remain as thin compatibility shims that resolve through the proxy's
//! [`MethodTable`] first.
//!
//! The actual resource reference is private to the proxy (Rust privacy ≈
//! the paper's use of Java encapsulation): holding a [`ResourceProxy`]
//! gives no way to reach the underlying [`Resource`] object directly.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_vm::Value;
use parking_lot::RwLock;

use crate::domain::DomainId;
use crate::resource::{MethodId, MethodTable, Resource, ResourceError};
use crate::telemetry::{Event, Journal, JournalHook};

/// Access-control failure raised by a proxy — the "security exception" of
/// Fig. 5 — or an application error forwarded from the resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// The proxy was revoked by the resource manager.
    Revoked,
    /// The proxy expired.
    Expired {
        /// Expiry instant.
        not_after: u64,
        /// Invocation instant.
        now: u64,
    },
    /// The method is not in the enabled set.
    MethodDisabled(String),
    /// The caller is not the domain this capability was granted to.
    NotHolder {
        /// Domain the proxy was granted to.
        holder: DomainId,
        /// Domain that attempted the call.
        caller: DomainId,
    },
    /// The caller is not on the management ACL for privileged methods.
    ManagementDenied(DomainId),
    /// Access was denied at proxy-creation time by the embedded policy.
    PolicyDenied {
        /// Resource that refused.
        resource: Urn,
        /// Why.
        reason: String,
    },
    /// The resource method itself failed (application-level).
    Resource(ResourceError),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Revoked => f.write_str("proxy revoked"),
            AccessError::Expired { not_after, now } => {
                write!(f, "proxy expired at {not_after}, now {now}")
            }
            AccessError::MethodDisabled(m) => write!(f, "method disabled: {m}"),
            AccessError::NotHolder { holder, caller } => {
                write!(f, "capability held by {holder}, invoked from {caller}")
            }
            AccessError::ManagementDenied(d) => {
                write!(f, "{d} may not manage this proxy")
            }
            AccessError::PolicyDenied { resource, reason } => {
                write!(f, "access to {resource} denied: {reason}")
            }
            AccessError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AccessError {}

impl From<ResourceError> for AccessError {
    fn from(e: ResourceError) -> Self {
        AccessError::Resource(e)
    }
}

/// How usage is metered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeterMode {
    /// No metering (cheapest).
    #[default]
    Off,
    /// Count invocations per method and apply tariffs.
    Count,
    /// Count and also accumulate wall-clock execution time of the
    /// underlying method ("metering the elapsed time for method execution
    /// and then basing the charges on it").
    CountAndTime,
}

/// Accumulated usage for one proxy (a snapshot; see
/// [`BoundMeter::reading`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeterReading {
    /// Successful invocations per method (methods never invoked have no
    /// entry).
    pub per_method: BTreeMap<String, u64>,
    /// Total successful invocations.
    pub total: u64,
    /// Total charge under the configured tariffs.
    pub charge: u64,
    /// Accumulated method execution time (real nanoseconds), when
    /// time-metering is on.
    pub elapsed_ns: u64,
}

/// Metering **configuration** — the string-keyed builder a resource owner
/// writes tariffs into. At proxy creation it is bound against the
/// resource's [`MethodTable`] into a [`BoundMeter`], which is what actually
/// counts (per-id atomic counters; no strings, no locks).
#[derive(Debug, Clone, Default)]
pub struct Meter {
    mode: MeterMode,
    /// Cost charged per successful call of each method; methods absent
    /// from the map cost `default_tariff`.
    tariffs: BTreeMap<String, u64>,
    default_tariff: u64,
}

impl Meter {
    /// No metering.
    pub fn off() -> Self {
        Meter::default()
    }

    /// Invocation counting with a flat tariff.
    pub fn counting(default_tariff: u64) -> Self {
        Meter {
            mode: MeterMode::Count,
            default_tariff,
            ..Default::default()
        }
    }

    /// Counting plus elapsed-time accumulation.
    pub fn timed(default_tariff: u64) -> Self {
        Meter {
            mode: MeterMode::CountAndTime,
            default_tariff,
            ..Default::default()
        }
    }

    /// Sets a per-method tariff ("possibly assigning different costs to
    /// different methods").
    pub fn with_tariff(mut self, method: impl Into<String>, cost: u64) -> Self {
        self.tariffs.insert(method.into(), cost);
        self
    }

    /// The metering mode.
    pub fn mode(&self) -> MeterMode {
        self.mode
    }

    /// Binds the configuration against a method table: tariffs become a
    /// per-id array, counters become per-id atomics. Tariffs naming
    /// methods outside the table are dropped (they could never be
    /// invoked).
    fn bind(self, table: &Arc<MethodTable>) -> BoundMeter {
        let mut tariffs = vec![self.default_tariff; table.len()];
        for (name, cost) in &self.tariffs {
            if let Some(MethodId(id)) = table.id(name) {
                tariffs[id as usize] = *cost;
            }
        }
        BoundMeter {
            mode: self.mode,
            table: Arc::clone(table),
            tariffs: tariffs.into_boxed_slice(),
            counts: (0..table.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            charge: AtomicU64::new(0),
            elapsed_ns: AtomicU64::new(0),
        }
    }
}

/// The live metering state inside a proxy: per-[`MethodId`] tariffs and
/// atomic counters bound from a [`Meter`] at proxy creation. Recording is
/// lock-free and allocation-free; [`BoundMeter::reading`] reconstructs the
/// string-keyed snapshot on demand (cold path).
#[derive(Debug)]
pub struct BoundMeter {
    mode: MeterMode,
    table: Arc<MethodTable>,
    tariffs: Box<[u64]>,
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    charge: AtomicU64,
    elapsed_ns: AtomicU64,
}

impl BoundMeter {
    /// The metering mode.
    pub fn mode(&self) -> MeterMode {
        self.mode
    }

    /// Records one metered invocation; returns the units charged
    /// (`None` when metering is off or the id is out of range), which is
    /// what [`ProxyControl::record_use_id`] publishes as a
    /// [`Event::MeterCharge`] when a journal is attached.
    #[inline]
    fn record(&self, MethodId(id): MethodId, elapsed_ns: u64) -> Option<u64> {
        if self.mode == MeterMode::Off {
            return None;
        }
        let id = id as usize;
        if id >= self.counts.len() {
            return None;
        }
        self.counts[id].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let amount = self.tariffs[id];
        self.charge.fetch_add(amount, Ordering::Relaxed);
        if self.mode == MeterMode::CountAndTime {
            self.elapsed_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        }
        Some(amount)
    }

    /// Snapshot of the accumulated usage, with method names resolved back
    /// through the table. Methods with zero invocations are omitted,
    /// matching the lazily-populated map of the pre-interning design.
    pub fn reading(&self) -> MeterReading {
        let mut per_method = BTreeMap::new();
        for (i, count) in self.counts.iter().enumerate() {
            let n = count.load(Ordering::Relaxed);
            if n > 0 {
                if let Some(name) = self.table.name(MethodId(i as u16)) {
                    per_method.insert(name.to_string(), n);
                }
            }
        }
        MeterReading {
            per_method,
            total: self.total.load(Ordering::Relaxed),
            charge: self.charge.load(Ordering::Relaxed),
            elapsed_ns: self.elapsed_ns.load(Ordering::Relaxed),
        }
    }
}

/// Sentinel in the `not_after` atomic meaning "never expires" (virtual
/// time never reaches `u64::MAX`, so a single `now > t` compare covers
/// both cases).
const NEVER: u64 = u64::MAX;

/// How many method ids the atomic bitmask covers; ids beyond it use the
/// spill set.
const MASK_BITS: u16 = 64;

/// The control block shared between a proxy and its resource manager.
///
/// The manager keeps an `Arc<ProxyControl>` after `get_proxy`, which is
/// what makes *"a resource manager can invalidate any of its currently
/// active proxies at any time it wishes"* work: revocation takes effect on
/// the very next invocation, with no cooperation from the agent.
///
/// All per-invocation state is atomic (see the module docs); the one lock
/// ([`spill`](#structfield.enabled_spill)) guards enabled bits for method
/// ids ≥ 64 and is only consulted when such an id is checked.
#[derive(Debug)]
pub struct ProxyControl {
    /// Domain the capability was granted to.
    holder: DomainId,
    /// Domains allowed to call privileged (management) methods.
    managers: BTreeSet<DomainId>,
    /// The proxied interface's interned method universe.
    table: Arc<MethodTable>,
    /// Enabled bits for method ids 0..64.
    enabled_mask: AtomicU64,
    /// Enabled ids ≥ 64 — the documented spill path for interfaces wider
    /// than the mask. Checked only for such ids.
    enabled_spill: RwLock<BTreeSet<u16>>,
    /// Expiry instant; [`NEVER`] when the proxy does not expire.
    not_after: AtomicU64,
    /// `SeqCst` so "no call succeeds after `revoke` returns" holds across
    /// threads (the revocation-race test relies on it).
    revoked: AtomicBool,
    meter: BoundMeter,
    /// Optional telemetry attachment (made at bind time by the runtime).
    /// While detached — the default, and the state in every
    /// direct-proxy benchmark — the hot path pays a single relaxed
    /// atomic load.
    journal: JournalHook,
}

impl ProxyControl {
    /// Creates a control block over an interned interface.
    ///
    /// * `holder` — the protection domain receiving the capability;
    /// * `managers` — domains allowed to revoke/adjust it (the resource
    ///   owner's domain; the server domain is always included);
    /// * `table` — the resource's method universe (ids are interpreted
    ///   against it);
    /// * `enabled` — initially enabled method ids;
    /// * `not_after` — optional expiry;
    /// * `meter` — accounting configuration, bound against `table` here.
    pub fn new(
        holder: DomainId,
        managers: impl IntoIterator<Item = DomainId>,
        table: Arc<MethodTable>,
        enabled: impl IntoIterator<Item = MethodId>,
        not_after: Option<u64>,
        meter: Meter,
    ) -> Arc<Self> {
        let mut managers: BTreeSet<DomainId> = managers.into_iter().collect();
        managers.insert(DomainId::SERVER);
        let mut mask = 0u64;
        let mut spill = BTreeSet::new();
        for MethodId(id) in enabled {
            if id < MASK_BITS {
                mask |= 1 << id;
            } else {
                spill.insert(id);
            }
        }
        let meter = meter.bind(&table);
        Arc::new(ProxyControl {
            holder,
            managers,
            table,
            enabled_mask: AtomicU64::new(mask),
            enabled_spill: RwLock::new(spill),
            not_after: AtomicU64::new(not_after.unwrap_or(NEVER)),
            revoked: AtomicBool::new(false),
            meter,
            journal: JournalHook::new(),
        })
    }

    /// String-keyed compatibility constructor: resolves `enabled` names
    /// through `table`. Names outside the table are dropped — they could
    /// never be invoked on the resource anyway.
    pub fn new_named<I, S>(
        holder: DomainId,
        managers: impl IntoIterator<Item = DomainId>,
        table: Arc<MethodTable>,
        enabled: I,
        not_after: Option<u64>,
        meter: Meter,
    ) -> Arc<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let ids: Vec<MethodId> = enabled
            .into_iter()
            .filter_map(|name| table.id(name.as_ref()))
            .collect();
        Self::new(holder, managers, table, ids, not_after, meter)
    }

    /// The domain this capability belongs to.
    pub fn holder(&self) -> DomainId {
        self.holder
    }

    /// The interned method universe this control block interprets ids
    /// against.
    pub fn table(&self) -> &Arc<MethodTable> {
        &self.table
    }

    /// Pre-invocation checks, in a fixed order: revocation, expiry,
    /// confinement, enablement. Factored out so the typed proxies in
    /// [`crate::buffer`] and the generated proxies in [`crate::proxygen`]
    /// share exactly this logic.
    ///
    /// **Fast path**: for method ids < 64 this is three atomic loads and
    /// compares — no lock, no allocation. Ids ≥ 64 read the spill set
    /// under a read lock (the documented wide-interface path).
    #[inline]
    pub fn check_id(
        &self,
        caller: DomainId,
        method: MethodId,
        now: u64,
    ) -> Result<(), AccessError> {
        if self.revoked.load(Ordering::SeqCst) {
            return Err(AccessError::Revoked);
        }
        let t = self.not_after.load(Ordering::Acquire);
        if now > t {
            self.journal.with(|j, resource| {
                j.append(Event::ProxyExpiry {
                    resource: resource.clone(),
                    holder: self.holder,
                    not_after: t,
                })
            });
            return Err(AccessError::Expired { not_after: t, now });
        }
        if caller != self.holder {
            return Err(AccessError::NotHolder {
                holder: self.holder,
                caller,
            });
        }
        let MethodId(id) = method;
        let enabled = if id < MASK_BITS {
            self.enabled_mask.load(Ordering::Acquire) & (1 << id) != 0
        } else {
            self.enabled_spill.read().contains(&id)
        };
        if !enabled {
            return Err(AccessError::MethodDisabled(self.method_label(method)));
        }
        Ok(())
    }

    /// String-keyed compatibility shim over [`ProxyControl::check_id`]:
    /// resolves `method` through the table first. Unknown methods fail
    /// `MethodDisabled` after the same revocation/expiry/confinement
    /// checks, preserving the pre-interning check order.
    pub fn check(&self, caller: DomainId, method: &str, now: u64) -> Result<(), AccessError> {
        match self.table.id(method) {
            Some(id) => self.check_id(caller, id, now),
            None => self
                .check_id(caller, MethodId(u16::MAX), now)
                .and(Err(AccessError::MethodDisabled(method.to_string())))
                .map_err(|e| match e {
                    AccessError::MethodDisabled(_) => {
                        AccessError::MethodDisabled(method.to_string())
                    }
                    other => other,
                }),
        }
    }

    /// Records one successful invocation in the meter (lock-free), and —
    /// when a journal is attached and the invocation was metered —
    /// publishes the charge as an [`Event::MeterCharge`].
    #[inline]
    pub fn record_use_id(&self, method: MethodId, elapsed_ns: u64) {
        if let Some(amount) = self.meter.record(method, elapsed_ns) {
            self.journal.with(|j, resource| {
                j.append(Event::MeterCharge {
                    resource: resource.clone(),
                    holder: self.holder,
                    method: self.method_label(method),
                    amount,
                })
            });
        }
    }

    /// String-keyed compatibility shim over
    /// [`ProxyControl::record_use_id`]. Unknown methods are not recorded.
    pub fn record_use(&self, method: &str, elapsed_ns: u64) {
        if let Some(id) = self.table.id(method) {
            self.record_use_id(id, elapsed_ns);
        }
    }

    /// Attaches a telemetry journal: subsequent charges, revocations, and
    /// expiries of this proxy are published to it, tagged with `resource`.
    /// Called by the runtime at bind time; standalone proxies stay
    /// detached and pay (almost) nothing.
    pub fn attach_journal(&self, journal: Arc<Journal>, resource: Urn) {
        self.journal.attach(journal, resource);
    }

    /// The bound meter (for reading accumulated charges).
    pub fn meter(&self) -> &BoundMeter {
        &self.meter
    }

    fn require_manager(&self, caller: DomainId) -> Result<(), AccessError> {
        if self.managers.contains(&caller) {
            Ok(())
        } else {
            Err(AccessError::ManagementDenied(caller))
        }
    }

    fn method_label(&self, id: MethodId) -> String {
        self.table
            .name(id)
            .map(str::to_string)
            .unwrap_or_else(|| id.to_string())
    }

    /// Privileged: invalidates the proxy permanently. After this returns,
    /// no in-flight or future invocation passes the check.
    pub fn revoke(&self, caller: DomainId) -> Result<(), AccessError> {
        self.require_manager(caller)?;
        self.revoked.store(true, Ordering::SeqCst);
        self.journal.with(|j, resource| {
            j.append(Event::ProxyRevoke {
                resource: resource.clone(),
                holder: self.holder,
            })
        });
        Ok(())
    }

    /// Privileged: removes one method id from the enabled set
    /// ("selectively revoke ... permissions for specific methods of a
    /// given proxy"). Returns whether the method had been enabled.
    pub fn disable_id(&self, caller: DomainId, method: MethodId) -> Result<bool, AccessError> {
        self.require_manager(caller)?;
        let MethodId(id) = method;
        if id < MASK_BITS {
            let bit = 1u64 << id;
            Ok(self.enabled_mask.fetch_and(!bit, Ordering::SeqCst) & bit != 0)
        } else {
            Ok(self.enabled_spill.write().remove(&id))
        }
    }

    /// Privileged: adds one method id to the enabled set ("or add
    /// permissions"). Returns whether the method was newly enabled.
    pub fn enable_id(&self, caller: DomainId, method: MethodId) -> Result<bool, AccessError> {
        self.require_manager(caller)?;
        let MethodId(id) = method;
        if id < MASK_BITS {
            let bit = 1u64 << id;
            Ok(self.enabled_mask.fetch_or(bit, Ordering::SeqCst) & bit == 0)
        } else {
            Ok(self.enabled_spill.write().insert(id))
        }
    }

    /// String-keyed shim over [`ProxyControl::disable_id`]. Disabling a
    /// method the interface does not have returns `Ok(false)` (it was
    /// never enabled).
    pub fn disable_method(&self, caller: DomainId, method: &str) -> Result<bool, AccessError> {
        match self.table.id(method) {
            Some(id) => self.disable_id(caller, id),
            None => {
                self.require_manager(caller)?;
                Ok(false)
            }
        }
    }

    /// String-keyed shim over [`ProxyControl::enable_id`]. Enabling a
    /// method the interface does not have returns `Ok(false)`: such a
    /// method could never be dispatched, so there is no bit to set. (The
    /// pre-interning design would store the useless name; this is the one
    /// deliberate semantic change of the interning refactor.)
    pub fn enable_method(
        &self,
        caller: DomainId,
        method: impl Into<String>,
    ) -> Result<bool, AccessError> {
        let method = method.into();
        match self.table.id(&method) {
            Some(id) => self.enable_id(caller, id),
            None => {
                self.require_manager(caller)?;
                Ok(false)
            }
        }
    }

    /// Privileged: changes the expiry instant (`None` = never).
    pub fn set_expiry(&self, caller: DomainId, not_after: Option<u64>) -> Result<(), AccessError> {
        self.require_manager(caller)?;
        self.not_after
            .store(not_after.unwrap_or(NEVER), Ordering::Release);
        Ok(())
    }

    /// Whether the proxy has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::SeqCst)
    }

    /// Whether one method id is currently enabled.
    pub fn is_enabled(&self, method: MethodId) -> bool {
        let MethodId(id) = method;
        if id < MASK_BITS {
            self.enabled_mask.load(Ordering::Acquire) & (1 << id) != 0
        } else {
            self.enabled_spill.read().contains(&id)
        }
    }

    /// Snapshot of currently enabled methods, lexicographically sorted.
    pub fn enabled_methods(&self) -> Vec<String> {
        let mask = self.enabled_mask.load(Ordering::Acquire);
        let spill = self.enabled_spill.read();
        let mut names: Vec<String> = self
            .table
            .iter()
            .filter(|(MethodId(id), _)| {
                if *id < MASK_BITS {
                    mask & (1 << id) != 0
                } else {
                    spill.contains(id)
                }
            })
            .map(|(_, name)| name.to_string())
            .collect();
        names.sort_unstable();
        names
    }
}

/// The proxy object handed to an agent (Fig. 5's `BufferProxy`,
/// generalized). The underlying resource reference is private.
#[derive(Clone)]
pub struct ResourceProxy {
    resource: Arc<dyn Resource>,
    control: Arc<ProxyControl>,
}

impl ResourceProxy {
    /// Assembles a proxy. Called from `get_proxy` implementations.
    pub fn new(resource: Arc<dyn Resource>, control: Arc<ProxyControl>) -> Self {
        ResourceProxy { resource, control }
    }

    /// The proxied resource's name (safe metadata, not the object).
    pub fn resource_name(&self) -> &Urn {
        self.resource.name()
    }

    /// The shared control block — the handle a resource manager retains
    /// for revocation and accounting. Management methods on it are
    /// ACL-guarded, so exposing it to the agent is harmless.
    pub fn control(&self) -> &Arc<ProxyControl> {
        &self.control
    }

    /// Resolves a method name against the proxied interface — the
    /// bind-time step. Callers that hold the returned id invoke through
    /// [`ResourceProxy::invoke_id`] without ever re-resolving the name.
    pub fn method_id(&self, method: &str) -> Option<MethodId> {
        self.control.table().id(method)
    }

    /// Invokes an interned method through the proxy: access checks,
    /// dispatch, metering. This is the fast path — checks and metering
    /// are atomics only (no lock, no heap allocation on the grant path);
    /// the id → name resolution for dispatch is an array index.
    ///
    /// Argument validation is the resource's own job (every
    /// [`Resource::invoke`] implementation begins with `check_args`), so
    /// the proxy adds **only** the access-control cost — which is what
    /// experiment X4 measures.
    ///
    /// `caller` is the invoking protection domain (supplied by the agent
    /// environment, never by agent code), `now` the current virtual time.
    pub fn invoke_id(
        &self,
        caller: DomainId,
        method: MethodId,
        args: &[Value],
        now: u64,
    ) -> Result<Value, AccessError> {
        // When a journal is attached (bound, server-side proxies), the
        // access check is itself timed into the ProxyCheck histogram;
        // detached proxies (standalone benches) pay one atomic load.
        if self.control.journal.is_attached() {
            let t0 = std::time::Instant::now();
            let checked = self.control.check_id(caller, method, now);
            let dt = t0.elapsed().as_nanos() as u64;
            self.control.journal.with(|j, _| {
                j.histos()
                    .record(crate::telemetry::HistoPath::ProxyCheck, dt)
            });
            checked?;
        } else {
            self.control.check_id(caller, method, now)?;
        }
        let name = self
            .control
            .table()
            .name(method)
            .ok_or(AccessError::Resource(ResourceError::NoSuchMethod(
                String::new(),
            )))?;
        let timed = self.control.meter().mode() == MeterMode::CountAndTime;
        let start = timed.then(std::time::Instant::now);
        let result = self.resource.invoke(name, args)?;
        let elapsed = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
        self.control.record_use_id(method, elapsed);
        Ok(result)
    }

    /// String-keyed compatibility shim over [`ResourceProxy::invoke_id`]:
    /// resolves `method` through the method table per call. Prefer
    /// resolving once with [`ResourceProxy::method_id`] and invoking by
    /// id.
    pub fn invoke(
        &self,
        caller: DomainId,
        method: &str,
        args: &[Value],
        now: u64,
    ) -> Result<Value, AccessError> {
        match self.control.table().id(method) {
            Some(id) => self.invoke_id(caller, id, args, now),
            None => {
                // Unknown method: run the same check order against a
                // never-enabled id so revocation/expiry/confinement errors
                // surface identically, then name the method in the error.
                self.control.check(caller, method, now)?;
                Err(AccessError::Resource(ResourceError::NoSuchMethod(
                    method.to_string(),
                )))
            }
        }
    }
}

impl std::fmt::Debug for ResourceProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceProxy")
            .field("resource", self.resource.name())
            .field("holder", &self.control.holder())
            .field("revoked", &self.control.is_revoked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::MethodSpec;
    use ajanta_vm::Ty;

    /// A counter resource with get/add/reset.
    struct Counter {
        name: Urn,
        owner: Urn,
        table: Arc<MethodTable>,
        value: RwLock<i64>,
    }

    impl Counter {
        fn new() -> Arc<Self> {
            Arc::new(Counter {
                name: Urn::resource("x.org", ["counter"]).unwrap(),
                owner: Urn::owner("x.org", ["admin"]).unwrap(),
                table: MethodTable::new(["get", "add", "reset"]),
                value: RwLock::new(0),
            })
        }
    }

    impl Resource for Counter {
        fn name(&self) -> &Urn {
            &self.name
        }
        fn owner(&self) -> &Urn {
            &self.owner
        }
        fn methods(&self) -> Vec<MethodSpec> {
            vec![
                MethodSpec::new("get", [], Ty::Int),
                MethodSpec::new("add", [Ty::Int], Ty::Int),
                MethodSpec::new("reset", [], Ty::Int),
            ]
        }
        fn method_table(&self) -> Arc<MethodTable> {
            Arc::clone(&self.table)
        }
        fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
            self.check_args(method, args)?;
            match method {
                "get" => Ok(Value::Int(*self.value.read())),
                "add" => {
                    let mut v = self.value.write();
                    *v += args[0].as_int().expect("checked");
                    Ok(Value::Int(*v))
                }
                "reset" => {
                    *self.value.write() = 0;
                    Ok(Value::Int(0))
                }
                other => Err(ResourceError::NoSuchMethod(other.into())),
            }
        }
    }

    const AGENT: DomainId = DomainId(7);
    const OTHER: DomainId = DomainId(8);

    fn proxy(enabled: &[&str], not_after: Option<u64>, meter: Meter) -> ResourceProxy {
        let counter = Counter::new();
        let control = ProxyControl::new_named(
            AGENT,
            [],
            counter.method_table(),
            enabled.iter().copied(),
            not_after,
            meter,
        );
        ResourceProxy::new(counter, control)
    }

    #[test]
    fn enabled_methods_pass_through() {
        let p = proxy(&["get", "add"], None, Meter::off());
        assert_eq!(
            p.invoke(AGENT, "add", &[Value::Int(5)], 0).unwrap(),
            Value::Int(5)
        );
        assert_eq!(p.invoke(AGENT, "get", &[], 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn interned_invocation_matches_string_invocation() {
        let p = proxy(&["get", "add"], None, Meter::off());
        let add = p.method_id("add").unwrap();
        let get = p.method_id("get").unwrap();
        assert_eq!(
            p.invoke_id(AGENT, add, &[Value::Int(5)], 0).unwrap(),
            Value::Int(5)
        );
        assert_eq!(p.invoke_id(AGENT, get, &[], 0).unwrap(), Value::Int(5));
        // Ids outside the interface are never enabled.
        assert!(matches!(
            p.invoke_id(AGENT, MethodId(999), &[], 0),
            Err(AccessError::MethodDisabled(_))
        ));
    }

    #[test]
    fn disabled_method_raises_security_exception() {
        let p = proxy(&["get"], None, Meter::off());
        assert_eq!(
            p.invoke(AGENT, "reset", &[], 0),
            Err(AccessError::MethodDisabled("reset".into()))
        );
        // "get" still works — restriction is per-method.
        p.invoke(AGENT, "get", &[], 0).unwrap();
    }

    #[test]
    fn expiry_enforced_per_invocation() {
        let p = proxy(&["get"], Some(100), Meter::off());
        p.invoke(AGENT, "get", &[], 100).unwrap();
        assert_eq!(
            p.invoke(AGENT, "get", &[], 101),
            Err(AccessError::Expired {
                not_after: 100,
                now: 101
            })
        );
    }

    #[test]
    fn confinement_rejects_other_domains() {
        let p = proxy(&["get"], None, Meter::off());
        // The proxy reference is Clone; leak it to another agent.
        let leaked = p.clone();
        assert_eq!(
            leaked.invoke(OTHER, "get", &[], 0),
            Err(AccessError::NotHolder {
                holder: AGENT,
                caller: OTHER
            })
        );
        // Original holder unaffected.
        p.invoke(AGENT, "get", &[], 0).unwrap();
    }

    #[test]
    fn revocation_is_immediate_and_permanent() {
        let p = proxy(&["get"], None, Meter::off());
        p.invoke(AGENT, "get", &[], 0).unwrap();
        p.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(p.invoke(AGENT, "get", &[], 0), Err(AccessError::Revoked));
        assert!(p.control().is_revoked());
    }

    #[test]
    fn selective_method_revocation_and_addition() {
        let p = proxy(&["get", "add"], None, Meter::off());
        assert!(p.control().disable_method(DomainId::SERVER, "add").unwrap());
        assert_eq!(
            p.invoke(AGENT, "add", &[Value::Int(1)], 0),
            Err(AccessError::MethodDisabled("add".into()))
        );
        assert!(p
            .control()
            .enable_method(DomainId::SERVER, "reset")
            .unwrap());
        p.invoke(AGENT, "reset", &[], 0).unwrap();
        // Enabled set reflects the changes.
        assert_eq!(p.control().enabled_methods(), ["get", "reset"]);
    }

    #[test]
    fn enabling_a_method_outside_the_interface_is_a_noop() {
        let p = proxy(&["get"], None, Meter::off());
        // Such a method could never be dispatched; there is no bit for it.
        assert!(!p
            .control()
            .enable_method(DomainId::SERVER, "ghost")
            .unwrap());
        assert!(!p
            .control()
            .disable_method(DomainId::SERVER, "ghost")
            .unwrap());
        // Management ACL still enforced on the shim path.
        assert_eq!(
            p.control().enable_method(AGENT, "ghost"),
            Err(AccessError::ManagementDenied(AGENT))
        );
    }

    #[test]
    fn management_requires_acl_membership() {
        let p = proxy(&["get"], None, Meter::off());
        // The holding agent itself is NOT a manager.
        assert_eq!(
            p.control().revoke(AGENT),
            Err(AccessError::ManagementDenied(AGENT))
        );
        assert_eq!(
            p.control().disable_method(OTHER, "get"),
            Err(AccessError::ManagementDenied(OTHER))
        );
        assert_eq!(
            p.control().set_expiry(AGENT, Some(5)),
            Err(AccessError::ManagementDenied(AGENT))
        );
        // Proxy still live.
        p.invoke(AGENT, "get", &[], 0).unwrap();
    }

    #[test]
    fn extra_manager_domains_work() {
        let manager = DomainId(99);
        let counter = Counter::new();
        let control = ProxyControl::new_named(
            AGENT,
            [manager],
            counter.method_table(),
            ["get"],
            None,
            Meter::off(),
        );
        let p = ResourceProxy::new(counter, control);
        p.control().revoke(manager).unwrap();
        assert!(p.control().is_revoked());
    }

    #[test]
    fn set_expiry_takes_effect() {
        let p = proxy(&["get"], None, Meter::off());
        p.control().set_expiry(DomainId::SERVER, Some(10)).unwrap();
        assert!(matches!(
            p.invoke(AGENT, "get", &[], 11),
            Err(AccessError::Expired { .. })
        ));
        p.control().set_expiry(DomainId::SERVER, None).unwrap();
        p.invoke(AGENT, "get", &[], 11).unwrap();
    }

    #[test]
    fn counting_meter_accumulates_per_method_and_tariffs() {
        let meter = Meter::counting(1).with_tariff("add", 5);
        let p = proxy(&["get", "add"], None, meter);
        p.invoke(AGENT, "get", &[], 0).unwrap();
        p.invoke(AGENT, "add", &[Value::Int(1)], 0).unwrap();
        p.invoke(AGENT, "add", &[Value::Int(1)], 0).unwrap();
        let r = p.control().meter().reading();
        assert_eq!(r.total, 3);
        assert_eq!(r.per_method["get"], 1);
        assert_eq!(r.per_method["add"], 2);
        assert_eq!(r.charge, 1 + 5 + 5);
        assert_eq!(r.elapsed_ns, 0); // counting mode does not time
    }

    #[test]
    fn denied_calls_are_not_charged() {
        let p = proxy(&["get"], None, Meter::counting(1));
        let _ = p.invoke(AGENT, "reset", &[], 0);
        let _ = p.invoke(OTHER, "get", &[], 0);
        assert_eq!(p.control().meter().reading().total, 0);
    }

    #[test]
    fn failed_resource_calls_are_not_charged() {
        let p = proxy(&["add"], None, Meter::counting(1));
        // Wrong arity: resource-level failure after access checks pass.
        let err = p.invoke(AGENT, "add", &[], 0).unwrap_err();
        assert!(matches!(err, AccessError::Resource(_)));
        assert_eq!(p.control().meter().reading().total, 0);
    }

    #[test]
    fn timed_meter_accumulates_elapsed() {
        let p = proxy(&["get"], None, Meter::timed(0));
        for _ in 0..50 {
            p.invoke(AGENT, "get", &[], 0).unwrap();
        }
        let r = p.control().meter().reading();
        assert_eq!(r.total, 50);
        assert!(r.elapsed_ns > 0, "elapsed time should accumulate");
    }

    #[test]
    fn check_order_revocation_before_confinement() {
        // A revoked proxy reports Revoked even to a non-holder — no
        // information leak about holders, and deterministic ordering.
        let p = proxy(&["get"], None, Meter::off());
        p.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(p.invoke(OTHER, "get", &[], 0), Err(AccessError::Revoked));
        // Same for a method outside the interface entirely.
        assert_eq!(p.invoke(OTHER, "ghost", &[], 0), Err(AccessError::Revoked));
    }

    #[test]
    fn argument_checks_happen_after_access_checks() {
        let p = proxy(&["add"], None, Meter::off());
        // Bad args from the holder: resource error.
        assert!(matches!(
            p.invoke(AGENT, "add", &[Value::str("x")], 0),
            Err(AccessError::Resource(ResourceError::BadArguments { .. }))
        ));
        // Bad args from a non-holder: confinement error, args never seen.
        assert!(matches!(
            p.invoke(OTHER, "add", &[Value::str("x")], 0),
            Err(AccessError::NotHolder { .. })
        ));
    }

    #[test]
    fn spill_path_handles_wide_interfaces() {
        // A synthetic 100-method interface: ids ≥ 64 live in the spill
        // set, and enable/disable/check work identically across the seam.
        let table = MethodTable::new((0..100).map(|i| format!("m{i}")));
        let control = ProxyControl::new(
            AGENT,
            [],
            Arc::clone(&table),
            [MethodId(3), MethodId(63), MethodId(64), MethodId(99)],
            None,
            Meter::off(),
        );
        for id in [3u16, 63, 64, 99] {
            assert!(
                control.is_enabled(MethodId(id)),
                "id {id} should be enabled"
            );
            assert!(control.check_id(AGENT, MethodId(id), 0).is_ok());
        }
        for id in [0u16, 62, 65, 98] {
            assert!(
                !control.is_enabled(MethodId(id)),
                "id {id} should be disabled"
            );
        }
        assert!(control.disable_id(DomainId::SERVER, MethodId(99)).unwrap());
        assert!(!control.is_enabled(MethodId(99)));
        assert!(control.enable_id(DomainId::SERVER, MethodId(98)).unwrap());
        assert!(control.check_id(AGENT, MethodId(98), 0).is_ok());
        let enabled = control.enabled_methods();
        assert!(enabled.contains(&"m64".to_string()));
        assert!(enabled.contains(&"m98".to_string()));
        assert!(!enabled.contains(&"m99".to_string()));
    }

    #[test]
    fn attached_journal_receives_charge_revoke_and_expiry_events() {
        use crate::telemetry::Counter as TCounter;
        let p = proxy(&["get"], Some(100), Meter::counting(3));
        let journal = Arc::new(Journal::new());
        p.control()
            .attach_journal(Arc::clone(&journal), p.resource_name().clone());
        p.invoke(AGENT, "get", &[], 0).unwrap();
        let _ = p.invoke(AGENT, "get", &[], 101); // expired
        p.control().revoke(DomainId::SERVER).unwrap();
        assert_eq!(journal.counter(TCounter::MeterCharges), 1);
        assert_eq!(journal.counter(TCounter::ChargeUnits), 3);
        assert_eq!(journal.counter(TCounter::ProxyExpiries), 1);
        assert_eq!(journal.counter(TCounter::ProxyRevocations), 1);
        let snap = journal.snapshot();
        assert!(matches!(
            &snap[0].event,
            Event::MeterCharge { method, amount: 3, .. } if method == "get"
        ));
    }

    #[test]
    fn detached_proxy_emits_nothing_and_still_meters() {
        let p = proxy(&["get"], None, Meter::counting(1));
        p.invoke(AGENT, "get", &[], 0).unwrap();
        assert_eq!(p.control().meter().reading().charge, 1);
    }

    #[test]
    fn unknown_method_with_live_proxy_reports_no_such_method() {
        let p = proxy(&["get"], None, Meter::off());
        assert_eq!(
            p.invoke(AGENT, "ghost", &[], 0),
            Err(AccessError::MethodDisabled("ghost".to_string()))
        );
    }
}
