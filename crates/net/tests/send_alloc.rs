//! Proves the steady-state socket send path allocates nothing per
//! frame.
//!
//! The whole binary runs under a counting allocator that attributes
//! allocations to the thread that made them (so the writer and reader
//! threads don't pollute the count). After a warm-up burst grows every
//! reused buffer — the per-peer lane's queue/scratch pair, the writer's
//! swap partner — to its steady-state capacity, a measured burst of
//! pre-built payloads must allocate at most a handful of times on the
//! sending thread (occasional `Vec` doublings), never once per frame.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{NetAddr, SocketConfig, SocketTransport, Transport};

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // `try_with` so a late allocation during thread teardown (after TLS
    // destruction) cannot panic inside the allocator.
    let _ = COUNTING.try_with(|on| {
        if on.get() {
            let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
        }
    });
}

struct CountingAlloc;

// SAFETY: defers every operation to `System`; the only addition is a
// thread-local counter bump, which itself never allocates (const-init
// TLS cells).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn bind(
    roots: &RootOfTrust,
    ca: &KeyPair,
    rng: &mut DetRng,
    serial: u64,
    name: &Urn,
) -> SocketTransport {
    let keys = KeyPair::generate(rng);
    let cert = Certificate::issue(
        name.to_string(),
        keys.public,
        "ca",
        ca,
        u64::MAX,
        serial,
        rng,
    );
    let identity = ChannelIdentity {
        name: name.clone(),
        keys,
        chain: vec![cert],
    };
    let seed = rng.next_u64();
    SocketTransport::bind(
        &"tcp:127.0.0.1:0".parse::<NetAddr>().unwrap(),
        SocketConfig {
            identity,
            roots: roots.clone(),
            seed,
        },
    )
    .expect("bind")
}

#[test]
fn steady_state_send_path_does_not_allocate_per_frame() {
    let mut rng = DetRng::new(0xA110C);
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca", ca.public);
    let a_name = Urn::server("alloc-a.test", ["s"]).unwrap();
    let b_name = Urn::server("alloc-b.test", ["s"]).unwrap();
    let ta = bind(&roots, &ca, &mut rng, 1, &a_name);
    let tb = bind(&roots, &ca, &mut rng, 2, &b_name);
    ta.add_route(b_name.clone(), tb.local_addr());
    tb.add_route(a_name.clone(), ta.local_addr());
    let eb = tb.attach(b_name.clone()).unwrap();

    const PAYLOAD: usize = 64;
    const WARMUP: usize = 400;
    const MEASURED: u64 = 512;

    // Warm-up: dial, handshake, and grow every reused buffer past the
    // measured burst's high-water mark. Received in full so the lane's
    // two ping-ponging queue buffers both see real batches.
    for _ in 0..WARMUP {
        ta.send_as(&a_name, &b_name, vec![1u8; PAYLOAD]).unwrap();
    }
    for _ in 0..WARMUP {
        eb.recv_timeout(Duration::from_secs(10)).expect("warmup");
    }

    // Payloads built before counting starts: `send_as` takes ownership,
    // so the frames themselves cost the sender nothing to hand over.
    let payloads: Vec<Vec<u8>> = (0..MEASURED).map(|_| vec![2u8; PAYLOAD]).collect();

    ALLOCS.with(|a| a.set(0));
    COUNTING.with(|c| c.set(true));
    for p in payloads {
        ta.send_as(&a_name, &b_name, p).unwrap();
    }
    COUNTING.with(|c| c.set(false));
    let allocs = ALLOCS.with(|a| a.get());

    for _ in 0..MEASURED {
        eb.recv_timeout(Duration::from_secs(10)).expect("measured");
    }

    // A per-frame allocation would show up as >= MEASURED counts; the
    // budget below only covers stray queue growth.
    assert!(
        allocs < MEASURED / 8,
        "send path allocated {allocs} times for {MEASURED} frames — \
         the steady-state path must not allocate per frame"
    );

    ta.shutdown();
    tb.shutdown();
}
