//! Property tests for the socket length-framing codec: decoding is
//! *total* — any byte soup yields frames, "need more", or a typed
//! [`FrameError`], never a panic — and framing round-trips losslessly
//! under arbitrary chunking.

use ajanta_net::frame::{decode_frame, encode_frame, FrameBuffer, FrameError, MAX_FRAME};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Total decoding: arbitrary garbage never panics, and every error
    /// is one of the typed variants.
    #[test]
    fn decode_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match decode_frame(&bytes) {
            Ok(None) => {}
            Ok(Some((consumed, payload))) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(payload.len() <= MAX_FRAME);
                prop_assert!(payload.len() <= consumed);
            }
            Err(FrameError::Oversize(n)) => prop_assert!(n > MAX_FRAME as u64),
            Err(FrameError::BadLength) => {}
        }
    }

    /// Every truncation of a valid frame asks for more bytes — never
    /// errors, never yields a wrong frame.
    #[test]
    fn truncation_always_asks_for_more(payload in proptest::collection::vec(any::<u8>(), 0..300)) {
        let framed = encode_frame(&payload);
        for cut in 0..framed.len() {
            prop_assert_eq!(decode_frame(&framed[..cut]).unwrap(), None);
        }
        let (consumed, decoded) = decode_frame(&framed).unwrap().unwrap();
        prop_assert_eq!(consumed, framed.len());
        prop_assert_eq!(decoded, payload);
    }

    /// A stream of frames reassembles exactly under arbitrary read
    /// chunk sizes, as socket reads produce them.
    #[test]
    fn chunked_streams_reassemble(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        for c in stream.chunks(chunk) {
            fb.extend(c);
            while let Some(f) = fb.next_frame().unwrap() {
                out.push(f);
            }
        }
        prop_assert_eq!(out, payloads);
        prop_assert_eq!(fb.pending(), 0);
    }

    /// Oversize length prefixes are a typed error, regardless of what
    /// follows them.
    #[test]
    fn oversize_lengths_are_typed_errors(
        extra in (MAX_FRAME as u64 + 1)..u64::MAX / 2,
        tail in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut e = ajanta_wire::Encoder::new();
        e.put_varint(extra);
        let mut bytes = e.finish();
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(decode_frame(&bytes), Err(FrameError::Oversize(extra)));
    }

    /// Garbage *after* a valid frame does not corrupt that frame.
    #[test]
    fn trailing_garbage_does_not_affect_the_frame(
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        garbage in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let framed = encode_frame(&payload);
        let mut stream = framed.clone();
        stream.extend_from_slice(&garbage);
        let (consumed, decoded) = decode_frame(&stream).unwrap().unwrap();
        prop_assert_eq!(consumed, framed.len());
        prop_assert_eq!(decoded, payload);
    }
}
