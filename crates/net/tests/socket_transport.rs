//! Integration tests for the real socket transport: authenticated
//! delivery over TCP and Unix-domain sockets, reconnect after a peer
//! restart, hostile-bytes rejection, and handshake enforcement.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{NetAddr, NetError, SocketConfig, SocketTransport, Transport};

struct TestWorld {
    roots: RootOfTrust,
    ca: KeyPair,
    rng: DetRng,
    serial: u64,
}

impl TestWorld {
    fn new(seed: u64) -> TestWorld {
        let mut rng = DetRng::new(seed);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        TestWorld {
            roots,
            ca,
            rng,
            serial: 0,
        }
    }

    fn identity(&mut self, name: &Urn) -> ChannelIdentity {
        let keys = KeyPair::generate(&mut self.rng);
        self.serial += 1;
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            &self.ca,
            u64::MAX,
            self.serial,
            &mut self.rng,
        );
        ChannelIdentity {
            name: name.clone(),
            keys,
            chain: vec![cert],
        }
    }

    fn bind(&mut self, name: &Urn, addr: &NetAddr) -> SocketTransport {
        let identity = self.identity(name);
        let seed = self.rng.next_u64();
        SocketTransport::bind(
            addr,
            SocketConfig {
                identity,
                roots: self.roots.clone(),
                seed,
            },
        )
        .expect("bind")
    }
}

fn server(n: &str) -> Urn {
    Urn::server(format!("{n}.test"), ["s"]).unwrap()
}

fn tcp_any() -> NetAddr {
    "tcp:127.0.0.1:0".parse().unwrap()
}

fn uds_path(tag: &str) -> NetAddr {
    let path = std::env::temp_dir().join(format!("ajanta-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    NetAddr::Uds(path)
}

#[test]
fn tcp_transports_deliver_both_ways() {
    let mut w = TestWorld::new(1);
    let (a_name, b_name) = (server("a"), server("b"));
    let ta = w.bind(&a_name, &tcp_any());
    let tb = w.bind(&b_name, &tcp_any());
    ta.add_route(b_name.clone(), tb.local_addr());
    tb.add_route(a_name.clone(), ta.local_addr());

    let ea = ta.attach(a_name.clone()).unwrap();
    let eb = tb.attach(b_name.clone()).unwrap();

    ea.send(&b_name, b"ping over tcp".to_vec()).unwrap();
    let d = eb.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(d.from, a_name);
    assert_eq!(d.payload, b"ping over tcp");
    assert!(d.arrival_ns > 0, "arrivals carry the wall-epoch clock");

    // Reply dials back through b's own route table.
    eb.send(&d.from, b"pong".to_vec()).unwrap();
    let d = ea.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(d.payload, b"pong");

    // Many frames over the cached connections, in order per direction.
    for i in 0..50u32 {
        ea.send(&b_name, i.to_be_bytes().to_vec()).unwrap();
    }
    for i in 0..50u32 {
        let d = eb.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(d.payload, i.to_be_bytes());
    }
    assert!(tb.stats().messages_delivered >= 51);

    ta.shutdown();
    tb.shutdown();
}

#[cfg(unix)]
#[test]
fn uds_reconnects_after_peer_restart() {
    let mut w = TestWorld::new(2);
    let (a_name, b_name) = (server("ra"), server("rb"));
    let addr_b = uds_path("reconnect");
    let ta = w.bind(&a_name, &uds_path("reconnect-a"));
    let tb = w.bind(&b_name, &addr_b);
    ta.add_route(b_name.clone(), tb.local_addr());

    let ea = ta.attach(a_name.clone()).unwrap();
    let eb = tb.attach(b_name.clone()).unwrap();
    ea.send(&b_name, b"before restart".to_vec()).unwrap();
    assert_eq!(
        eb.recv_timeout(Duration::from_secs(10)).unwrap().payload,
        b"before restart"
    );
    drop(eb);

    // Restart b at the same path: a's cached connection is now dead;
    // the next send must detect the failure and redial.
    tb.shutdown();
    let tb2 = w.bind(&b_name, &addr_b);
    let eb2 = tb2.attach(b_name.clone()).unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let mut delivered = false;
    while std::time::Instant::now() < deadline {
        ea.send(&b_name, b"after restart".to_vec()).unwrap();
        if let Ok(d) = eb2.recv_timeout(Duration::from_millis(500)) {
            assert_eq!(d.payload, b"after restart");
            delivered = true;
            break;
        }
    }
    assert!(delivered, "sends never reconnected to the restarted peer");

    ta.shutdown();
    tb2.shutdown();
}

#[test]
fn unrouted_destination_errors_and_local_loopback_works() {
    let mut w = TestWorld::new(3);
    let a_name = server("solo");
    let ta = w.bind(&a_name, &tcp_any());
    let ea = ta.attach(a_name.clone()).unwrap();

    let ghost = server("ghost");
    assert_eq!(
        ea.send(&ghost, vec![1]),
        Err(NetError::UnknownEndpoint(ghost.clone()))
    );

    // Two endpoints on one transport short-circuit in-process.
    let other = server("other");
    let eo = ta.attach(other.clone()).unwrap();
    ea.send(&other, b"local".to_vec()).unwrap();
    assert_eq!(
        eo.recv_timeout(Duration::from_secs(5)).unwrap().payload,
        b"local"
    );
    ta.shutdown();
}

#[test]
fn garbage_bytes_are_rejected_not_panicked_on() {
    let mut w = TestWorld::new(4);
    let a_name = server("victim");
    let ta = w.bind(&a_name, &tcp_any());
    let rejects = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&rejects);
    ta.on_frame_reject(Arc::new(move |_reason| {
        counter.fetch_add(1, Ordering::SeqCst);
    }));
    let _ea = ta.attach(a_name.clone()).unwrap();

    let NetAddr::Tcp(addr) = ta.local_addr() else {
        panic!("tcp transport");
    };

    // A hostile peer that speaks no handshake at all: an oversize
    // length prefix (10 × 0xFF varint bytes) then junk.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let mut junk = vec![0xFFu8; 10];
    junk.extend_from_slice(&[0u8; 256]);
    let _ = s.write_all(&junk);
    drop(s);

    // A second hostile peer that closes mid-handshake.
    let s = std::net::TcpStream::connect(addr).unwrap();
    drop(s);

    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    while rejects.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        rejects.load(Ordering::SeqCst) >= 2,
        "hostile connections must surface as rejections"
    );
    assert!(ta.stats().messages_delivered == 0);
    ta.shutdown();
}

#[test]
fn untrusted_peers_fail_the_handshake() {
    let mut honest = TestWorld::new(5);
    let b_name = server("guarded");
    let tb = honest.bind(&b_name, &tcp_any());
    let eb = tb.attach(b_name.clone()).unwrap();

    // Mallory has a self-signed world: her CA is not in b's roots.
    let mut mallory = TestWorld::new(6);
    let m_name = server("mallory");
    let tm = mallory.bind(&m_name, &tcp_any());
    tm.add_route(b_name.clone(), tb.local_addr());
    let em = tm.attach(m_name.clone()).unwrap();

    // Send succeeds locally (fire-and-forget datagram semantics) but
    // nothing is ever delivered: the responder rejects the chain.
    em.send(&b_name, b"let me in".to_vec()).unwrap();
    assert!(
        eb.recv_timeout(Duration::from_secs(3)).is_err(),
        "unauthenticated frames must never be delivered"
    );
    tm.shutdown();
    tb.shutdown();
}
