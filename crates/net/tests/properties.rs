//! Property tests for the network security layers: no corrupted frame or
//! datagram is ever accepted, decoding is total on garbage, and link
//! timing is monotone.

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::{ChannelIdentity, SecureChannel};
use ajanta_net::{LinkModel, ReplayGuard, SealedDatagram};
use ajanta_wire::Wire;
use proptest::prelude::*;

fn world(
    seed: u64,
) -> (
    RootOfTrust,
    ChannelIdentity,
    KeyPair,
    ChannelIdentity,
    KeyPair,
    DetRng,
) {
    let mut rng = DetRng::new(seed);
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca", ca.public);
    let mk = |name: &Urn, serial: u64, rng: &mut DetRng| {
        let keys = KeyPair::generate(rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            &ca,
            u64::MAX,
            serial,
            rng,
        );
        (
            ChannelIdentity {
                name: name.clone(),
                keys: keys.clone(),
                chain: vec![cert],
            },
            keys,
        )
    };
    let a_name = Urn::server("a.org", ["a"]).unwrap();
    let b_name = Urn::server("b.org", ["b"]).unwrap();
    let (a, ak) = mk(&a_name, 1, &mut rng);
    let (b, bk) = mk(&b_name, 2, &mut rng);
    (roots, a, ak, b, bk, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption of a sealed datagram is rejected (at
    /// decode or at open) — never silently accepted with altered content.
    #[test]
    fn corrupted_datagrams_never_open(seed in any::<u64>(),
                                      payload in proptest::collection::vec(any::<u8>(), 0..256),
                                      idx in any::<prop::sample::Index>(),
                                      flip in 1u8..=255) {
        let (roots, a, _ak, b, bk, mut rng) = world(seed);
        let d = SealedDatagram::seal(&a, &b.name, bk.public, &payload, 100, &mut rng);
        let bytes = d.to_bytes();
        let mut bad = bytes.clone();
        let i = idx.index(bad.len());
        bad[i] ^= flip;
        prop_assume!(bad != bytes);

        let mut guard = ReplayGuard::new(u64::MAX / 4);
        match SealedDatagram::from_bytes(&bad) {
            Err(_) => {} // structural rejection
            Ok(dg) => {
                let out = dg.open(&b, &bk, &roots, 100, &mut guard);
                if let Ok((from, got)) = out {
                    // The only acceptable "success" would be a corruption
                    // that somehow left everything semantically identical;
                    // since we assumed the bytes differ, any success with
                    // identical plaintext+sender means the flipped byte
                    // was in a non-canonical gap — our codec has none, so
                    // this must not happen.
                    prop_assert!(from == a.name && got == payload,
                        "corruption accepted with ALTERED content");
                    prop_assert!(false, "corruption accepted at byte {i}");
                }
            }
        }
    }

    /// Secure-channel frames: any corruption is rejected; the original
    /// still opens exactly once.
    #[test]
    fn corrupted_frames_never_open(seed in any::<u64>(),
                                   payload in proptest::collection::vec(any::<u8>(), 0..256),
                                   idx in any::<prop::sample::Index>(),
                                   flip in 1u8..=255) {
        let (roots, a, _ak, b, _bk, mut rng) = world(seed);
        let (hello, pending) = SecureChannel::initiate(&a, &b.name, &mut rng);
        let (ack, mut chan_b) = SecureChannel::respond(&b, &roots, &hello, 0, &mut rng).unwrap();
        let mut chan_a = pending.finish(&roots, &ack, 0).unwrap();

        let frame = chan_a.seal(&payload);
        let mut bad = frame.clone();
        let i = idx.index(bad.len());
        bad[i] ^= flip;
        prop_assume!(bad != frame);
        prop_assert!(chan_b.open(&bad).is_err(), "corrupted frame accepted");
        // The genuine frame still arrives intact afterwards.
        prop_assert_eq!(chan_b.open(&frame).unwrap(), payload);
    }

    /// Sealing is confidential for every payload: the plaintext never
    /// appears as a substring of the wire bytes (for payloads long enough
    /// to make accidental collision negligible).
    #[test]
    fn datagrams_hide_payloads(seed in any::<u64>(),
                               payload in proptest::collection::vec(any::<u8>(), 16..256)) {
        let (_roots, a, _ak, b, bk, mut rng) = world(seed);
        let d = SealedDatagram::seal(&a, &b.name, bk.public, &payload, 0, &mut rng);
        let bytes = d.to_bytes();
        prop_assert!(!bytes.windows(payload.len()).any(|w| w == payload.as_slice()));
    }

    /// Link transit time is monotone in message size and never less than
    /// the propagation latency.
    #[test]
    fn link_transit_monotone(latency in 0u64..10_000_000, bw in 1u64..1_000_000_000,
                             s1 in 0usize..1_000_000, s2 in 0usize..1_000_000) {
        let link = LinkModel { latency_ns: latency, bandwidth_bps: bw, drop_prob: 0.0 };
        let (small, large) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(link.transit_ns(small) <= link.transit_ns(large));
        prop_assert!(link.transit_ns(small) >= latency);
    }

    /// Datagram decode is total on arbitrary garbage.
    #[test]
    fn datagram_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SealedDatagram::from_bytes(&bytes);
    }

    /// The writer's coalesced batch — `varint(len) ‖ sealed` records
    /// laid back to back in one stream write — decodes to exactly the
    /// frame sequence N single-record writes produce, the receiving
    /// channel opens it back to the original payloads, and decoding
    /// stays total when the batch is split at *every* byte boundary.
    #[test]
    fn coalesced_batches_decode_like_single_writes(
        seed in any::<u64>(),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..6),
    ) {
        use ajanta_net::frame::FrameBuffer;

        let (roots, a, _ak, b, _bk, mut rng) = world(seed);
        let (hello, pending) = SecureChannel::initiate(&a, &b.name, &mut rng);
        let (ack, mut chan_b) = SecureChannel::respond(&b, &roots, &hello, 0, &mut rng).unwrap();
        let mut chan_a = pending.finish(&roots, &ack, 0).unwrap();

        // Lay the records out exactly as the socket writer does.
        let mut batch = Vec::new();
        let mut records = Vec::new();
        for p in &payloads {
            let mut rec = Vec::new();
            ajanta_wire::write_varint(&mut rec, chan_a.sealed_len(p.len()) as u64);
            chan_a.seal_into(p, &mut rec);
            batch.extend_from_slice(&rec);
            records.push(rec);
        }

        // One coalesced write parses to one frame per record, in order.
        let mut fb = FrameBuffer::new();
        fb.extend(&batch);
        let mut batched_frames = Vec::new();
        while let Some(f) = fb.next_frame().unwrap() {
            batched_frames.push(f);
        }
        prop_assert_eq!(fb.pending(), 0);
        prop_assert_eq!(batched_frames.len(), payloads.len());

        // N single writes yield byte-identical frames.
        let mut single_frames = Vec::new();
        for rec in &records {
            let mut fb = FrameBuffer::new();
            fb.extend(rec);
            single_frames.push(fb.next_frame().unwrap().unwrap());
            prop_assert!(fb.next_frame().unwrap().is_none());
            prop_assert_eq!(fb.pending(), 0);
        }
        prop_assert_eq!(&batched_frames, &single_frames);

        // The receive channel opens the batched frames to the payloads.
        for (f, p) in batched_frames.iter().zip(&payloads) {
            prop_assert_eq!(&chan_b.open(f).unwrap(), p);
        }

        // Truncation-total: at every split point the prefix yields only
        // whole frames (never an error, never a partial), and prefix +
        // suffix reassemble the identical sequence.
        for cut in 0..=batch.len() {
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            fb.extend(&batch[..cut]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
            prop_assert!(got.len() <= payloads.len());
            fb.extend(&batch[cut..]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
            prop_assert_eq!(&got, &single_frames);
            prop_assert_eq!(fb.pending(), 0);
        }
    }
}
