//! Length framing for socket transports.
//!
//! A TCP or Unix-domain stream is an undelimited byte pipe; this module
//! cuts it back into the discrete frames the rest of the stack expects.
//! Each frame is a varint byte-length prefix (the `ajanta-wire` LEB128
//! encoding, minimal-form enforced) followed by that many payload
//! bytes. Decoding is *incremental* — a partial frame is "need more
//! bytes", never an error — and *total*: any byte sequence either
//! yields frames or a typed [`FrameError`]; it can never panic, because
//! frames now arrive from real sockets where any bytes at all can show
//! up.
//!
//! What travels inside a frame on an authenticated connection is a
//! sealed [`crate::secure::SecureChannel`] record whose plaintext is a
//! [`ChannelFrame`]: the claimed origin, the destination endpoint, and
//! the opaque payload — the same triple [`crate::sim::Delivery`]
//! carries on the simulation.

use ajanta_naming::Urn;
use ajanta_wire::{write_varint, Decoder, Encoder, Wire, WireError};

/// Hard ceiling on one frame's payload length (16 MiB). Far above any
/// legitimate agent transfer, far below an allocation a hostile length
/// prefix could use to exhaust memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a byte stream failed to frame-decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix claims a payload over [`MAX_FRAME`] bytes.
    Oversize(u64),
    /// The length prefix is not a minimal-form varint (garbage bytes).
    BadLength,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::BadLength => f.write_str("malformed frame length prefix"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: varint length prefix + payload bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 5);
    encode_frame_into(payload, &mut out);
    out
}

/// Appends one frame (varint length prefix + payload bytes) to an
/// existing buffer — the pooled-buffer path: a send loop reuses `out`'s
/// capacity instead of allocating a fresh `Vec` per frame, and the
/// length header and payload land in one buffer in one pass (no
/// intermediate framed copy).
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.reserve(payload.len() + 5);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Attempts to locate one frame at the front of `buf` without copying.
///
/// Returns `Ok(Some((consumed, payload)))` borrowing the payload out of
/// `buf` when a complete frame is present, `Ok(None)` when more bytes
/// are needed, and a [`FrameError`] when the prefix itself is hostile
/// (oversize or malformed) — the only sane recovery from which is
/// closing the connection, since frame boundaries are lost.
pub fn decode_frame_ref(buf: &[u8]) -> Result<Option<(usize, &[u8])>, FrameError> {
    let mut d = Decoder::new(buf);
    let len = match d.get_varint() {
        Ok(n) => n,
        // An incomplete varint is indistinguishable from a short read.
        Err(WireError::Truncated) => return Ok(None),
        Err(_) => return Err(FrameError::BadLength),
    };
    if len > MAX_FRAME as u64 {
        return Err(FrameError::Oversize(len));
    }
    let header = buf.len() - d.remaining();
    if d.remaining() < len as usize {
        return Ok(None);
    }
    Ok(Some((
        header + len as usize,
        &buf[header..header + len as usize],
    )))
}

/// Attempts to decode one frame from the front of `buf`, copying the
/// payload out. See [`decode_frame_ref`] for the zero-copy form.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(usize, Vec<u8>)>, FrameError> {
    Ok(decode_frame_ref(buf)?.map(|(consumed, payload)| (consumed, payload.to_vec())))
}

/// When the consumed prefix of a [`FrameBuffer`] exceeds this, the tail
/// is compacted to the front. Until then consumption just advances a
/// cursor, so a burst of small frames costs zero per-frame memmoves.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// An accumulation buffer that turns arbitrary byte chunks (as a socket
/// read produces them) back into frames.
///
/// Grow-only: consumption advances a cursor instead of draining the
/// `Vec` (which would memmove the tail once per frame); the backing
/// allocation is reused for the life of the connection and compacted
/// only when the dead prefix passes [`COMPACT_THRESHOLD`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset have been consumed as frames.
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            // Everything consumed: restart at the front of the same
            // allocation.
            self.buf.clear();
            self.start = 0;
        } else if self.start > COMPACT_THRESHOLD {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one has accumulated, borrowing
    /// the payload out of the buffer — valid until the next `extend`.
    /// After a [`FrameError`] the buffer contents are undefined; the
    /// connection must be dropped.
    pub fn next_frame_ref(&mut self) -> Result<Option<&[u8]>, FrameError> {
        match decode_frame_ref(&self.buf[self.start..])? {
            None => Ok(None),
            Some((consumed, payload)) => {
                let end = self.start + consumed;
                let begin = end - payload.len();
                self.start = end;
                Ok(Some(&self.buf[begin..end]))
            }
        }
    }

    /// Pops the next complete frame, copied out. See
    /// [`FrameBuffer::next_frame_ref`] for the zero-copy form.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        Ok(self.next_frame_ref()?.map(<[u8]>::to_vec))
    }

    /// Bytes currently buffered (incomplete frame tail).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// The plaintext a secure channel carries per frame: who claims to have
/// sent it, which endpoint it is for, and the opaque bytes — exactly
/// the [`crate::sim::Delivery`] triple, minus the arrival instant the
/// receiver stamps itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelFrame {
    /// Claimed origin (unauthenticated at this layer, like the
    /// simulation's `Delivery::from` — sealed datagrams authenticate).
    pub from: Urn,
    /// Destination endpoint name.
    pub to: Urn,
    /// Opaque payload (a sealed datagram, in the runtime's use).
    pub payload: Vec<u8>,
}

/// Appends the wire image of a [`ChannelFrame`] built from borrowed
/// parts — byte-identical to `ChannelFrame { .. }.to_bytes()` without
/// cloning the names or the payload into a struct first. The socket
/// send path uses this so its steady state allocates nothing per frame.
pub fn encode_channel_frame_into(from: &Urn, to: &Urn, payload: &[u8], out: &mut Vec<u8>) {
    let mut e = Encoder::from_vec(std::mem::take(out));
    from.encode(&mut e);
    to.encode(&mut e);
    e.put_bytes(payload);
    *out = e.finish();
}

impl Wire for ChannelFrame {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        self.to.encode(e);
        e.put_bytes(&self.payload);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChannelFrame {
            from: Urn::decode(d)?,
            to: Urn::decode(d)?,
            payload: d.get_bytes()?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let framed = encode_frame(b"hello");
        let (consumed, payload) = decode_frame(&framed).unwrap().unwrap();
        assert_eq!(consumed, framed.len());
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_frame_roundtrips() {
        let framed = encode_frame(b"");
        let (consumed, payload) = decode_frame(&framed).unwrap().unwrap();
        assert_eq!(consumed, 1);
        assert!(payload.is_empty());
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let framed = encode_frame(&vec![7u8; 300]);
        for cut in 0..framed.len() {
            assert_eq!(decode_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(decode_frame(&framed).unwrap().is_some());
    }

    #[test]
    fn oversize_length_is_a_typed_error() {
        let mut e = Encoder::new();
        e.put_varint(MAX_FRAME as u64 + 1);
        assert_eq!(
            decode_frame(&e.finish()),
            Err(FrameError::Oversize(MAX_FRAME as u64 + 1))
        );
    }

    #[test]
    fn non_minimal_varint_is_a_typed_error() {
        // 0x80 0x00 encodes zero non-minimally.
        assert_eq!(decode_frame(&[0x80, 0x00]), Err(FrameError::BadLength));
    }

    #[test]
    fn buffer_reassembles_across_chunk_boundaries() {
        let mut stream = Vec::new();
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1 + i as usize * 37]).collect();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut out = Vec::new();
        let mut fb = FrameBuffer::new();
        for chunk in stream.chunks(13) {
            fb.extend(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn channel_frame_roundtrips() {
        let f = ChannelFrame {
            from: Urn::server("a.org", ["s"]).unwrap(),
            to: Urn::server("b.org", ["s"]).unwrap(),
            payload: vec![1, 2, 3],
        };
        assert_eq!(ChannelFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn encode_frame_into_matches_encode_frame_and_appends() {
        for len in [0usize, 1, 127, 128, 300, 20_000] {
            let payload = vec![0x5Au8; len];
            let fresh = encode_frame(&payload);
            let mut pooled = vec![0xEE]; // pre-existing byte must survive
            encode_frame_into(&payload, &mut pooled);
            assert_eq!(pooled[0], 0xEE);
            assert_eq!(&pooled[1..], fresh.as_slice(), "len {len}");
        }
    }

    #[test]
    fn encode_channel_frame_into_matches_struct_encoding() {
        let from = Urn::server("a.org", ["s"]).unwrap();
        let to = Urn::server("b.org", ["s"]).unwrap();
        for payload in [vec![], vec![9u8; 7], vec![1u8; 999]] {
            let whole = ChannelFrame {
                from: from.clone(),
                to: to.clone(),
                payload: payload.clone(),
            }
            .to_bytes();
            let mut out = Vec::new();
            encode_channel_frame_into(&from, &to, &payload, &mut out);
            assert_eq!(out, whole);
        }
    }

    #[test]
    fn frame_buffer_cursor_survives_heavy_churn_and_compacts() {
        fn body(n: u64) -> Vec<u8> {
            let mut b = vec![(n % 251) as u8; 120];
            b[..8].copy_from_slice(&n.to_be_bytes());
            b
        }
        let mut fb = FrameBuffer::new();
        let mut expected = 0u64;
        // Keep the buffer at least one frame deep so consumption only
        // ever advances the cursor; ~120-byte frames × 2000 rounds push
        // the dead prefix well past COMPACT_THRESHOLD, forcing several
        // compactions mid-stream. Every frame must come back in order.
        for round in 0..2_000u64 {
            fb.extend(&encode_frame(&body(round)));
            if round == 0 {
                continue;
            }
            let frame = fb.next_frame().unwrap().expect("a frame is buffered");
            assert_eq!(frame, body(expected));
            expected += 1;
        }
        while let Some(frame) = fb.next_frame().unwrap() {
            assert_eq!(frame, body(expected));
            expected += 1;
        }
        assert_eq!(expected, 2_000);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn next_frame_ref_borrows_the_same_bytes() {
        let mut fb = FrameBuffer::new();
        fb.extend(&encode_frame(b"alpha"));
        fb.extend(&encode_frame(b"beta"));
        assert_eq!(fb.next_frame_ref().unwrap().unwrap(), b"alpha");
        assert_eq!(fb.next_frame_ref().unwrap().unwrap(), b"beta");
        assert_eq!(fb.next_frame_ref().unwrap(), None);
    }
}
