//! Length framing for socket transports.
//!
//! A TCP or Unix-domain stream is an undelimited byte pipe; this module
//! cuts it back into the discrete frames the rest of the stack expects.
//! Each frame is a varint byte-length prefix (the `ajanta-wire` LEB128
//! encoding, minimal-form enforced) followed by that many payload
//! bytes. Decoding is *incremental* — a partial frame is "need more
//! bytes", never an error — and *total*: any byte sequence either
//! yields frames or a typed [`FrameError`]; it can never panic, because
//! frames now arrive from real sockets where any bytes at all can show
//! up.
//!
//! What travels inside a frame on an authenticated connection is a
//! sealed [`crate::secure::SecureChannel`] record whose plaintext is a
//! [`ChannelFrame`]: the claimed origin, the destination endpoint, and
//! the opaque payload — the same triple [`crate::sim::Delivery`]
//! carries on the simulation.

use ajanta_naming::Urn;
use ajanta_wire::{Decoder, Encoder, Wire, WireError};

/// Hard ceiling on one frame's payload length (16 MiB). Far above any
/// legitimate agent transfer, far below an allocation a hostile length
/// prefix could use to exhaust memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a byte stream failed to frame-decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix claims a payload over [`MAX_FRAME`] bytes.
    Oversize(u64),
    /// The length prefix is not a minimal-form varint (garbage bytes).
    BadLength,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::BadLength => f.write_str("malformed frame length prefix"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: varint length prefix + payload bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut e = Encoder::with_capacity(payload.len() + 5);
    e.put_bytes(payload);
    e.finish()
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(Some((consumed, payload)))` when a complete frame is
/// present, `Ok(None)` when more bytes are needed, and a [`FrameError`]
/// when the prefix itself is hostile (oversize or malformed) — the only
/// sane recovery from which is closing the connection, since frame
/// boundaries are lost.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(usize, Vec<u8>)>, FrameError> {
    let mut d = Decoder::new(buf);
    let len = match d.get_varint() {
        Ok(n) => n,
        // An incomplete varint is indistinguishable from a short read.
        Err(WireError::Truncated) => return Ok(None),
        Err(_) => return Err(FrameError::BadLength),
    };
    if len > MAX_FRAME as u64 {
        return Err(FrameError::Oversize(len));
    }
    let header = buf.len() - d.remaining();
    if d.remaining() < len as usize {
        return Ok(None);
    }
    let payload = buf[header..header + len as usize].to_vec();
    Ok(Some((header + len as usize, payload)))
}

/// An accumulation buffer that turns arbitrary byte chunks (as a socket
/// read produces them) back into frames.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one has accumulated. After a
    /// [`FrameError`] the buffer contents are undefined; the connection
    /// must be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        match decode_frame(&self.buf)? {
            None => Ok(None),
            Some((consumed, payload)) => {
                self.buf.drain(..consumed);
                Ok(Some(payload))
            }
        }
    }

    /// Bytes currently buffered (incomplete frame tail).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// The plaintext a secure channel carries per frame: who claims to have
/// sent it, which endpoint it is for, and the opaque bytes — exactly
/// the [`crate::sim::Delivery`] triple, minus the arrival instant the
/// receiver stamps itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelFrame {
    /// Claimed origin (unauthenticated at this layer, like the
    /// simulation's `Delivery::from` — sealed datagrams authenticate).
    pub from: Urn,
    /// Destination endpoint name.
    pub to: Urn,
    /// Opaque payload (a sealed datagram, in the runtime's use).
    pub payload: Vec<u8>,
}

impl Wire for ChannelFrame {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        self.to.encode(e);
        e.put_bytes(&self.payload);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ChannelFrame {
            from: Urn::decode(d)?,
            to: Urn::decode(d)?,
            payload: d.get_bytes()?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let framed = encode_frame(b"hello");
        let (consumed, payload) = decode_frame(&framed).unwrap().unwrap();
        assert_eq!(consumed, framed.len());
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_frame_roundtrips() {
        let framed = encode_frame(b"");
        let (consumed, payload) = decode_frame(&framed).unwrap().unwrap();
        assert_eq!(consumed, 1);
        assert!(payload.is_empty());
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let framed = encode_frame(&vec![7u8; 300]);
        for cut in 0..framed.len() {
            assert_eq!(decode_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(decode_frame(&framed).unwrap().is_some());
    }

    #[test]
    fn oversize_length_is_a_typed_error() {
        let mut e = Encoder::new();
        e.put_varint(MAX_FRAME as u64 + 1);
        assert_eq!(
            decode_frame(&e.finish()),
            Err(FrameError::Oversize(MAX_FRAME as u64 + 1))
        );
    }

    #[test]
    fn non_minimal_varint_is_a_typed_error() {
        // 0x80 0x00 encodes zero non-minimally.
        assert_eq!(decode_frame(&[0x80, 0x00]), Err(FrameError::BadLength));
    }

    #[test]
    fn buffer_reassembles_across_chunk_boundaries() {
        let mut stream = Vec::new();
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1 + i as usize * 37]).collect();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut out = Vec::new();
        let mut fb = FrameBuffer::new();
        for chunk in stream.chunks(13) {
            fb.extend(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn channel_frame_roundtrips() {
        let f = ChannelFrame {
            from: Urn::server("a.org", ["s"]).unwrap(),
            to: Urn::server("b.org", ["s"]).unwrap(),
            payload: vec![1, 2, 3],
        };
        assert_eq!(ChannelFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }
}
