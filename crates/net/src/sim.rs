//! The simulated network: named endpoints, modeled links, adversaries,
//! and byte/latency accounting.
//!
//! Delivery is via crossbeam channels so agent servers can run as real
//! threads; *timing* is virtual (see [`crate::time`]): each delivery
//! carries the virtual arrival instant computed from the link model, and
//! receivers advance the shared clock to that instant when they consume
//! the message. Single-threaded drivers (the experiment harness) therefore
//! get fully deterministic byte counts and virtual completion times.

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use ajanta_crypto::DetRng;
use ajanta_naming::Urn;

use crate::adversary::{Adversary, TransitAction};
use crate::link::LinkModel;
use crate::time::VClock;

/// One received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Claimed sender. **Unauthenticated** at this layer — adversaries can
    /// spoof it; the secure channel is what authenticates.
    pub from: Urn,
    /// Virtual arrival instant (ns).
    pub arrival_ns: u64,
    /// Raw payload.
    pub payload: Vec<u8>,
}

/// Network operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination endpoint is not registered.
    UnknownEndpoint(Urn),
    /// An endpoint with this name is already attached.
    NameInUse(Urn),
    /// The endpoint's queue is gone (endpoint dropped).
    Disconnected,
    /// No message available (non-blocking receive).
    Empty,
    /// A socket-transport I/O failure (dial, handshake, or write). The
    /// simulation never produces this.
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownEndpoint(u) => write!(f, "unknown endpoint {u}"),
            NetError::NameInUse(u) => write!(f, "endpoint name in use: {u}"),
            NetError::Disconnected => f.write_str("endpoint disconnected"),
            NetError::Empty => f.write_str("no message available"),
            NetError::Io(detail) => write!(f, "transport i/o error: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate traffic statistics (the raw material for experiment X9).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages successfully delivered.
    pub messages_delivered: u64,
    /// Messages dropped by links or adversaries.
    pub messages_dropped: u64,
    /// Messages injected by adversaries.
    pub messages_injected: u64,
    /// Payload bytes that entered the network (before drops).
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Frames pushed through coalesced socket writes (SimNet has no
    /// write path, so this stays 0 on the simulated transport).
    pub frames_coalesced: u64,
    /// Actual `write` calls issued on socket streams (0 on SimNet).
    pub write_syscalls: u64,
}

struct Inner {
    clock: VClock,
    endpoints: Mutex<BTreeMap<Urn, Sender<Delivery>>>,
    /// Directed link overrides; anything absent uses `default_link`.
    links: Mutex<BTreeMap<(Urn, Urn), LinkModel>>,
    default_link: LinkModel,
    adversary: Mutex<Option<Arc<dyn Adversary>>>,
    stats: Mutex<NetStats>,
    rng: Mutex<DetRng>,
}

/// A handle to the shared simulated network. Cloning is cheap.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<Inner>,
}

impl SimNet {
    /// A network with the given default link model; `seed` drives loss
    /// sampling.
    pub fn new(default_link: LinkModel, seed: u64) -> Self {
        SimNet {
            inner: Arc::new(Inner {
                clock: VClock::new(),
                endpoints: Mutex::new(BTreeMap::new()),
                links: Mutex::new(BTreeMap::new()),
                default_link,
                adversary: Mutex::new(None),
                stats: Mutex::new(NetStats::default()),
                rng: Mutex::new(DetRng::new(seed)),
            }),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VClock {
        &self.inner.clock
    }

    /// Attaches a new endpoint named `name`.
    pub fn attach(&self, name: Urn) -> Result<Endpoint, NetError> {
        let (tx, rx) = unbounded();
        let mut eps = self.inner.endpoints.lock();
        if eps.contains_key(&name) {
            return Err(NetError::NameInUse(name));
        }
        eps.insert(name.clone(), tx);
        Ok(Endpoint {
            name,
            net: self.clone(),
            rx,
        })
    }

    /// Removes an endpoint (its queued messages are discarded).
    pub fn detach(&self, name: &Urn) {
        self.inner.endpoints.lock().remove(name);
    }

    /// Overrides the model for the directed link `from → to`.
    pub fn set_link(&self, from: Urn, to: Urn, model: LinkModel) {
        self.inner.links.lock().insert((from, to), model);
    }

    /// Installs (or clears) the network adversary.
    pub fn set_adversary(&self, adversary: Option<Arc<dyn Adversary>>) {
        *self.inner.adversary.lock() = adversary;
    }

    /// Sends on behalf of `from` without holding its [`Endpoint`] — the
    /// path used by worker threads that share a server's NIC. (Claimed
    /// origins are unauthenticated at this layer anyway; authentication
    /// is the secure channel's and sealed datagram's job.)
    pub fn send_as(&self, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        self.transmit(from, to, payload)
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.lock().clone()
    }

    /// Resets the traffic counters (between experiment trials).
    pub fn reset_stats(&self) {
        *self.inner.stats.lock() = NetStats::default();
    }

    fn link_for(&self, from: &Urn, to: &Urn) -> LinkModel {
        self.inner
            .links
            .lock()
            .get(&(from.clone(), to.clone()))
            .copied()
            .unwrap_or(self.inner.default_link)
    }

    /// Core transmit path: adversary, loss, latency, stats, enqueue.
    fn transmit(&self, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        {
            let mut stats = self.inner.stats.lock();
            stats.bytes_sent += payload.len() as u64;
        }

        // Adversary first: it sits on the wire.
        let adversary = self.inner.adversary.lock().clone();
        let mut to_deliver: Vec<(Urn, Vec<u8>)> = Vec::with_capacity(1);
        match adversary.as_ref().map(|a| a.on_transit(from, to, &payload)) {
            None | Some(TransitAction::Pass) => to_deliver.push((from.clone(), payload)),
            Some(TransitAction::Tamper(modified)) => to_deliver.push((from.clone(), modified)),
            Some(TransitAction::Drop) => {
                self.inner.stats.lock().messages_dropped += 1;
                return Ok(()); // silently lost, as on a real network
            }
            Some(TransitAction::InjectAfter(extra)) => {
                to_deliver.push((from.clone(), payload));
                self.inner.stats.lock().messages_injected += extra.len() as u64;
                to_deliver.extend(extra);
            }
        }

        let link = self.link_for(from, to);
        for (claimed_from, bytes) in to_deliver {
            // Link loss model.
            if link.drop_prob > 0.0 && self.inner.rng.lock().unit_f64() < link.drop_prob {
                self.inner.stats.lock().messages_dropped += 1;
                continue;
            }
            let arrival_ns = self.inner.clock.now() + link.transit_ns(bytes.len());
            let sender = {
                let eps = self.inner.endpoints.lock();
                eps.get(to)
                    .cloned()
                    .ok_or_else(|| NetError::UnknownEndpoint(to.clone()))?
            };
            let size = bytes.len() as u64;
            // Hold the stats lock across the enqueue: once the receiver
            // can observe the delivery, anyone reading `stats()` must
            // already see it counted.
            let mut stats = self.inner.stats.lock();
            sender
                .send(Delivery {
                    from: claimed_from,
                    arrival_ns,
                    payload: bytes,
                })
                .map_err(|_| NetError::Disconnected)?;
            stats.messages_delivered += 1;
            stats.bytes_delivered += size;
        }
        Ok(())
    }
}

/// One attached network endpoint (an agent server's NIC).
pub struct Endpoint {
    name: Urn,
    net: SimNet,
    rx: Receiver<Delivery>,
}

impl Endpoint {
    /// This endpoint's global name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// The network this endpoint is attached to.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Sends `payload` to `to`.
    pub fn send(&self, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        self.net.transmit(&self.name, to, payload)
    }

    /// The raw delivery channel, for `select!`-style event loops that
    /// multiplex network input with control channels. Receiving through
    /// this does **not** advance the virtual clock; call
    /// [`VClock::advance_to`] with the delivery's arrival time (as
    /// [`Endpoint::recv`] does) when consuming from it directly.
    pub fn receiver(&self) -> &Receiver<Delivery> {
        &self.rx
    }

    /// Blocking receive; advances the virtual clock to the arrival time.
    pub fn recv(&self) -> Result<Delivery, NetError> {
        let d = self.rx.recv().map_err(|_| NetError::Disconnected)?;
        self.net.clock().advance_to(d.arrival_ns);
        Ok(d)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Delivery, NetError> {
        match self.rx.try_recv() {
            Ok(d) => {
                self.net.clock().advance_to(d.arrival_ns);
                Ok(d)
            }
            Err(TryRecvError::Empty) => Err(NetError::Empty),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Blocking receive with a real-time timeout (for threaded tests that
    /// must not hang on a lost message).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Delivery, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => {
                self.net.clock().advance_to(d.arrival_ns);
                Ok(d)
            }
            Err(_) => Err(NetError::Empty),
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.net.detach(&self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Dropper, Eavesdropper, Replayer, Tamperer};
    use crate::time::MILLIS;

    fn server(n: &str) -> Urn {
        Urn::server("net.test", [n]).unwrap()
    }

    fn net() -> SimNet {
        SimNet::new(LinkModel::default(), 42)
    }

    #[test]
    fn point_to_point_delivery() {
        let net = net();
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), b"hello".to_vec()).unwrap();
        let d = b.recv().unwrap();
        assert_eq!(d.from, *a.name());
        assert_eq!(d.payload, b"hello");
        assert!(d.arrival_ns > 0);
    }

    #[test]
    fn unknown_destination_errors() {
        let net = net();
        let a = net.attach(server("a")).unwrap();
        assert_eq!(
            a.send(&server("ghost"), vec![]),
            Err(NetError::UnknownEndpoint(server("ghost")))
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let net = net();
        let _a = net.attach(server("a")).unwrap();
        assert!(matches!(
            net.attach(server("a")),
            Err(NetError::NameInUse(_))
        ));
    }

    #[test]
    fn detach_on_drop_frees_name() {
        let net = net();
        {
            let _a = net.attach(server("a")).unwrap();
        }
        // Name is free again.
        let _a2 = net.attach(server("a")).unwrap();
    }

    #[test]
    fn virtual_clock_advances_with_link_model() {
        let net = SimNet::new(
            LinkModel {
                latency_ns: 10 * MILLIS,
                bandwidth_bps: 0,
                drop_prob: 0.0,
            },
            1,
        );
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), vec![0; 100]).unwrap();
        let d = b.recv().unwrap();
        assert_eq!(d.arrival_ns, 10 * MILLIS);
        assert_eq!(net.clock().now(), 10 * MILLIS);
    }

    #[test]
    fn per_link_override_beats_default() {
        let net = net();
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        net.set_link(
            a.name().clone(),
            b.name().clone(),
            LinkModel {
                latency_ns: 77,
                bandwidth_bps: 0,
                drop_prob: 0.0,
            },
        );
        a.send(b.name(), vec![]).unwrap();
        assert_eq!(b.recv().unwrap().arrival_ns, 77);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let net = net();
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), vec![0; 10]).unwrap();
        a.send(b.name(), vec![0; 30]).unwrap();
        let s = net.stats();
        assert_eq!(s.messages_delivered, 2);
        assert_eq!(s.bytes_sent, 40);
        assert_eq!(s.bytes_delivered, 40);
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn lossy_link_drops_and_counts() {
        let net = SimNet::new(LinkModel::default().with_loss(1.0), 7);
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), vec![1, 2, 3]).unwrap();
        assert_eq!(b.try_recv(), Err(NetError::Empty));
        let s = net.stats();
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.messages_delivered, 0);
        assert_eq!(s.bytes_sent, 3);
        assert_eq!(s.bytes_delivered, 0);
    }

    #[test]
    fn eavesdropper_sees_raw_frames() {
        let net = net();
        let eve = Arc::new(Eavesdropper::new());
        net.set_adversary(Some(eve.clone()));
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), b"plaintext password".to_vec()).unwrap();
        b.recv().unwrap();
        assert!(eve.saw_plaintext(b"password"));
    }

    #[test]
    fn tamperer_corrupts_delivered_bytes() {
        let net = net();
        net.set_adversary(Some(Arc::new(Tamperer::new(5, 1.0))));
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), vec![0u8; 64]).unwrap();
        let d = b.recv().unwrap();
        assert_ne!(d.payload, vec![0u8; 64]);
    }

    #[test]
    fn replayer_duplicates_messages() {
        let net = net();
        net.set_adversary(Some(Arc::new(Replayer::new())));
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), b"once".to_vec()).unwrap();
        let d1 = b.recv().unwrap();
        let d2 = b.recv().unwrap();
        assert_eq!(d1.payload, d2.payload);
        assert_eq!(net.stats().messages_injected, 1);
    }

    #[test]
    fn dropper_adversary_deletes() {
        let net = net();
        let dropper = Arc::new(Dropper::new(3, 1.0));
        net.set_adversary(Some(dropper.clone()));
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), b"gone".to_vec()).unwrap();
        assert_eq!(b.try_recv(), Err(NetError::Empty));
        assert_eq!(dropper.dropped_count(), 1);
        // Clearing the adversary restores delivery.
        net.set_adversary(None);
        a.send(b.name(), b"back".to_vec()).unwrap();
        assert_eq!(b.recv().unwrap().payload, b"back");
    }

    #[test]
    fn threaded_ping_pong() {
        let net = net();
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        let a_name = a.name().clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..100 {
                    let d = b.recv().unwrap();
                    b.send(&d.from, d.payload).unwrap();
                }
            });
            for i in 0..100u32 {
                a.send(&server("b"), i.to_be_bytes().to_vec()).unwrap();
                let d = a.recv().unwrap();
                assert_eq!(d.payload, i.to_be_bytes());
            }
            let _ = a_name;
        });
        assert_eq!(net.stats().messages_delivered, 200);
    }

    #[test]
    fn recv_timeout_returns_empty_when_silent() {
        let net = net();
        let a = net.attach(server("a")).unwrap();
        assert_eq!(
            a.recv_timeout(std::time::Duration::from_millis(10)),
            Err(NetError::Empty)
        );
    }
}
