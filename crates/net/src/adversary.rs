//! The paper's attacker taxonomy, as pluggable link interceptors.
//!
//! Section 2 distinguishes **passive** attacks (eavesdropping) from
//! **active** ones (interception/modification, deletion, forgery/insertion,
//! replay, impersonation). Each class gets an [`Adversary`] implementation
//! that the [`crate::SimNet`] consults for every message in transit, so
//! integration tests and experiment X11 can switch attacks on and measure
//! whether the secure channel detects or survives them.

use ajanta_crypto::DetRng;
use ajanta_naming::Urn;
use parking_lot::Mutex;

use crate::time::VClock;

/// What the adversary does to one in-transit message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransitAction {
    /// Deliver unchanged.
    Pass,
    /// Deliver these bytes instead (modification attack).
    Tamper(Vec<u8>),
    /// Silently delete the message.
    Drop,
    /// Deliver unchanged, then also deliver the extra messages
    /// (insertion/replay attacks). Each entry is `(spoofed_from, bytes)` —
    /// the adversary controls claimed origins (impersonation).
    InjectAfter(Vec<(Urn, Vec<u8>)>),
}

/// An attacker sitting on the network.
///
/// Implementations must be `Send + Sync`: the simulated network is shared
/// across server threads.
pub trait Adversary: Send + Sync {
    /// Observe (and possibly act on) one message in transit.
    fn on_transit(&self, from: &Urn, to: &Urn, bytes: &[u8]) -> TransitAction;
}

/// Passive attacker: records a copy of every frame, never interferes.
///
/// The security property under test: everything it captures from a
/// [`crate::secure::SecureChannel`] is ciphertext — the plaintext never
/// appears as a substring of any captured frame.
#[derive(Default)]
pub struct Eavesdropper {
    captured: Mutex<Vec<(Urn, Urn, Vec<u8>)>>,
}

impl Eavesdropper {
    /// A fresh eavesdropper with an empty capture log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies of everything seen so far.
    pub fn captured(&self) -> Vec<(Urn, Urn, Vec<u8>)> {
        self.captured.lock().clone()
    }

    /// True when `needle` occurs inside any captured frame — used to
    /// assert that plaintext secrets do NOT leak.
    pub fn saw_plaintext(&self, needle: &[u8]) -> bool {
        self.captured
            .lock()
            .iter()
            .any(|(_, _, frame)| contains_subslice(frame, needle))
    }

    /// Number of captured frames.
    pub fn frame_count(&self) -> usize {
        self.captured.lock().len()
    }
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

impl Adversary for Eavesdropper {
    fn on_transit(&self, from: &Urn, to: &Urn, bytes: &[u8]) -> TransitAction {
        self.captured
            .lock()
            .push((from.clone(), to.clone(), bytes.to_vec()));
        TransitAction::Pass
    }
}

/// Active attacker: flips bits in a fraction of messages.
pub struct Tamperer {
    rng: Mutex<DetRng>,
    /// Probability of tampering with any given message.
    probability: f64,
    tampered: Mutex<u64>,
}

impl Tamperer {
    /// Tampers with each message independently with `probability`.
    pub fn new(seed: u64, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        Tamperer {
            rng: Mutex::new(DetRng::new(seed)),
            probability,
            tampered: Mutex::new(0),
        }
    }

    /// How many messages were modified.
    pub fn tampered_count(&self) -> u64 {
        *self.tampered.lock()
    }
}

impl Adversary for Tamperer {
    fn on_transit(&self, _from: &Urn, _to: &Urn, bytes: &[u8]) -> TransitAction {
        let mut rng = self.rng.lock();
        if bytes.is_empty() || rng.unit_f64() >= self.probability {
            return TransitAction::Pass;
        }
        let mut copy = bytes.to_vec();
        let idx = rng.below(copy.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        copy[idx] ^= 1 << bit;
        *self.tampered.lock() += 1;
        TransitAction::Tamper(copy)
    }
}

/// Active attacker: deletes a fraction of messages.
pub struct Dropper {
    rng: Mutex<DetRng>,
    probability: f64,
    dropped: Mutex<u64>,
}

impl Dropper {
    /// Drops each message independently with `probability`.
    pub fn new(seed: u64, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        Dropper {
            rng: Mutex::new(DetRng::new(seed)),
            probability,
            dropped: Mutex::new(0),
        }
    }

    /// How many messages were deleted.
    pub fn dropped_count(&self) -> u64 {
        *self.dropped.lock()
    }
}

impl Adversary for Dropper {
    fn on_transit(&self, _from: &Urn, _to: &Urn, _bytes: &[u8]) -> TransitAction {
        let mut rng = self.rng.lock();
        if rng.unit_f64() < self.probability {
            *self.dropped.lock() += 1;
            TransitAction::Drop
        } else {
            TransitAction::Pass
        }
    }
}

/// A fault model rather than a malicious attacker: lossy links plus
/// crashed hosts. Every message is dropped independently with
/// `drop_prob`, and any message to or from a host inside one of its
/// blackout windows (virtual time) is dropped unconditionally —
/// simulating a server that is down for that interval. The
/// fault-tolerant migration layer is measured against this adversary.
pub struct LinkFault {
    rng: Mutex<DetRng>,
    drop_prob: f64,
    /// Virtual clock for evaluating blackout windows; without one,
    /// blackouts are ignored and only probabilistic loss applies.
    clock: Mutex<Option<VClock>>,
    /// `(host, from_ns, until_ns)` — messages touching `host` while
    /// `from_ns <= now < until_ns` are dropped.
    blackouts: Mutex<Vec<(Urn, u64, u64)>>,
    dropped: Mutex<u64>,
    blackout_dropped: Mutex<u64>,
}

impl LinkFault {
    /// A fault injector dropping each message with `drop_prob`.
    pub fn new(seed: u64, drop_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        LinkFault {
            rng: Mutex::new(DetRng::new(seed)),
            drop_prob,
            clock: Mutex::new(None),
            blackouts: Mutex::new(Vec::new()),
            dropped: Mutex::new(0),
            blackout_dropped: Mutex::new(0),
        }
    }

    /// Attaches the virtual clock blackout windows are evaluated against.
    pub fn with_clock(self, clock: VClock) -> Self {
        *self.clock.lock() = Some(clock);
        self
    }

    /// Declares that `host` is unreachable for `[from_ns, until_ns)` —
    /// a crashed server during that window. May be called while the
    /// network is live.
    pub fn blackout(&self, host: Urn, from_ns: u64, until_ns: u64) {
        self.blackouts.lock().push((host, from_ns, until_ns));
    }

    /// Messages dropped by probabilistic loss.
    pub fn dropped_count(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Messages dropped because an endpoint was blacked out.
    pub fn blackout_dropped_count(&self) -> u64 {
        *self.blackout_dropped.lock()
    }

    fn blacked_out(&self, from: &Urn, to: &Urn) -> bool {
        let now = match self.clock.lock().as_ref() {
            Some(clock) => clock.now(),
            None => return false,
        };
        self.blackouts
            .lock()
            .iter()
            .any(|(host, start, end)| (*start..*end).contains(&now) && (host == from || host == to))
    }
}

impl Adversary for LinkFault {
    fn on_transit(&self, from: &Urn, to: &Urn, _bytes: &[u8]) -> TransitAction {
        if self.blacked_out(from, to) {
            *self.blackout_dropped.lock() += 1;
            return TransitAction::Drop;
        }
        if self.drop_prob > 0.0 && self.rng.lock().unit_f64() < self.drop_prob {
            *self.dropped.lock() += 1;
            return TransitAction::Drop;
        }
        TransitAction::Pass
    }
}

/// Crash-fault adversary: a SIGKILLed server, as the network sees it.
///
/// Unlike [`LinkFault`]'s blackout windows (scheduled against virtual
/// time up front), a crash is a runtime *switch*: [`ServerCrash::crash`]
/// makes a host fall silent — every message to or from it drops
/// unconditionally, in both directions, exactly the connectivity a
/// killed process presents — and [`ServerCrash::restart`] brings it
/// back. This is the in-process twin of the cross-process
/// kill-and-restart smoke: the durability layer (admission WAL plus
/// retry custody) can be driven against it without spawning real
/// processes, with the crash instant chosen mid-test rather than
/// pre-scheduled.
#[derive(Default)]
pub struct ServerCrash {
    down: Mutex<std::collections::BTreeSet<Urn>>,
    dropped: Mutex<u64>,
    crashes: Mutex<u64>,
}

impl ServerCrash {
    /// A crash injector with every host up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kills `host`: from now until [`ServerCrash::restart`], the
    /// network drops everything touching it. Idempotent (re-crashing a
    /// dead host neither counts nor errors).
    pub fn crash(&self, host: Urn) {
        if self.down.lock().insert(host) {
            *self.crashes.lock() += 1;
        }
    }

    /// Brings `host` back; its traffic flows again.
    pub fn restart(&self, host: &Urn) {
        self.down.lock().remove(host);
    }

    /// Whether `host` is currently crashed.
    pub fn is_down(&self, host: &Urn) -> bool {
        self.down.lock().contains(host)
    }

    /// Messages swallowed by dead hosts so far.
    pub fn dropped_count(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Distinct crash transitions (up → down) so far.
    pub fn crash_count(&self) -> u64 {
        *self.crashes.lock()
    }
}

impl Adversary for ServerCrash {
    fn on_transit(&self, from: &Urn, to: &Urn, _bytes: &[u8]) -> TransitAction {
        let down = self.down.lock();
        if down.contains(from) || down.contains(to) {
            drop(down);
            *self.dropped.lock() += 1;
            return TransitAction::Drop;
        }
        TransitAction::Pass
    }
}

/// Active attacker: re-sends every observed message a second time
/// (replay), claiming the original sender's identity.
#[derive(Default)]
pub struct Replayer {
    replayed: Mutex<u64>,
}

impl Replayer {
    /// A fresh replayer.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many replays were injected.
    pub fn replayed_count(&self) -> u64 {
        *self.replayed.lock()
    }
}

impl Adversary for Replayer {
    fn on_transit(&self, from: &Urn, _to: &Urn, bytes: &[u8]) -> TransitAction {
        *self.replayed.lock() += 1;
        TransitAction::InjectAfter(vec![(from.clone(), bytes.to_vec())])
    }
}

/// Active attacker: inserts forged messages after each genuine one,
/// impersonating the sender with attacker-chosen payloads.
pub struct Forger {
    rng: Mutex<DetRng>,
    forged: Mutex<u64>,
}

impl Forger {
    /// A forger whose payloads are generated from `seed`.
    pub fn new(seed: u64) -> Self {
        Forger {
            rng: Mutex::new(DetRng::new(seed)),
            forged: Mutex::new(0),
        }
    }

    /// How many forgeries were injected.
    pub fn forged_count(&self) -> u64 {
        *self.forged.lock()
    }
}

impl Adversary for Forger {
    fn on_transit(&self, from: &Urn, _to: &Urn, bytes: &[u8]) -> TransitAction {
        let mut rng = self.rng.lock();
        // Forge something shaped like the real message.
        let mut fake = vec![0u8; bytes.len().max(8)];
        rng.fill_bytes(&mut fake);
        *self.forged.lock() += 1;
        TransitAction::InjectAfter(vec![(from.clone(), fake)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urn(n: &str) -> Urn {
        Urn::server("x.org", [n]).unwrap()
    }

    #[test]
    fn eavesdropper_records_and_matches_substrings() {
        let e = Eavesdropper::new();
        assert_eq!(
            e.on_transit(&urn("a"), &urn("b"), b"top secret payload"),
            TransitAction::Pass
        );
        assert_eq!(e.frame_count(), 1);
        assert!(e.saw_plaintext(b"secret"));
        assert!(!e.saw_plaintext(b"missing"));
        assert!(e.saw_plaintext(b"")); // degenerate needle
    }

    #[test]
    fn tamperer_flips_exactly_one_bit() {
        let t = Tamperer::new(1, 1.0);
        let msg = vec![0u8; 32];
        match t.on_transit(&urn("a"), &urn("b"), &msg) {
            TransitAction::Tamper(out) => {
                let flipped: u32 = msg
                    .iter()
                    .zip(&out)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                assert_eq!(flipped, 1);
            }
            other => panic!("expected tamper, got {other:?}"),
        }
        assert_eq!(t.tampered_count(), 1);
    }

    #[test]
    fn tamperer_zero_probability_passes() {
        let t = Tamperer::new(1, 0.0);
        assert_eq!(
            t.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
        assert_eq!(t.tampered_count(), 0);
    }

    #[test]
    fn tamperer_passes_empty_messages() {
        let t = Tamperer::new(1, 1.0);
        assert_eq!(t.on_transit(&urn("a"), &urn("b"), b""), TransitAction::Pass);
    }

    #[test]
    fn dropper_honors_probability_extremes() {
        let d = Dropper::new(2, 1.0);
        assert_eq!(
            d.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Drop
        );
        assert_eq!(d.dropped_count(), 1);
        let d = Dropper::new(2, 0.0);
        assert_eq!(
            d.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
    }

    #[test]
    fn replayer_duplicates_with_original_sender() {
        let r = Replayer::new();
        match r.on_transit(&urn("a"), &urn("b"), b"frame") {
            TransitAction::InjectAfter(extra) => {
                assert_eq!(extra, vec![(urn("a"), b"frame".to_vec())]);
            }
            other => panic!("expected inject, got {other:?}"),
        }
        assert_eq!(r.replayed_count(), 1);
    }

    #[test]
    fn forger_injects_random_payload_of_similar_shape() {
        let f = Forger::new(3);
        match f.on_transit(&urn("a"), &urn("b"), &[7u8; 100]) {
            TransitAction::InjectAfter(extra) => {
                assert_eq!(extra.len(), 1);
                assert_eq!(extra[0].0, urn("a"));
                assert_eq!(extra[0].1.len(), 100);
                assert_ne!(extra[0].1, vec![7u8; 100]);
            }
            other => panic!("expected inject, got {other:?}"),
        }
    }

    #[test]
    fn link_fault_honors_probability_extremes() {
        let f = LinkFault::new(5, 1.0);
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Drop
        );
        assert_eq!(f.dropped_count(), 1);
        let f = LinkFault::new(5, 0.0);
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
        assert_eq!(f.dropped_count(), 0);
    }

    #[test]
    fn link_fault_blackout_drops_both_directions_within_window() {
        let clock = VClock::new();
        let f = LinkFault::new(5, 0.0).with_clock(clock.clone());
        f.blackout(urn("b"), 100, 200);
        // Before the window: passes.
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
        clock.advance_to(150);
        // Inside: drops traffic to AND from the dead host.
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Drop
        );
        assert_eq!(
            f.on_transit(&urn("b"), &urn("a"), b"x"),
            TransitAction::Drop
        );
        // Unrelated hosts are unaffected.
        assert_eq!(
            f.on_transit(&urn("a"), &urn("c"), b"x"),
            TransitAction::Pass
        );
        clock.advance_to(200);
        // The window is half-open: at until_ns the host is back.
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
        assert_eq!(f.blackout_dropped_count(), 2);
        assert_eq!(f.dropped_count(), 0);
    }

    #[test]
    fn link_fault_blackout_without_clock_is_inert() {
        let f = LinkFault::new(5, 0.0);
        f.blackout(urn("b"), 0, u64::MAX);
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
    }

    #[test]
    fn server_crash_silences_a_host_until_restart() {
        let f = ServerCrash::new();
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
        f.crash(urn("b"));
        f.crash(urn("b")); // idempotent
        assert!(f.is_down(&urn("b")));
        assert_eq!(f.crash_count(), 1);
        // Both directions drop while down; unrelated hosts still talk.
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Drop
        );
        assert_eq!(
            f.on_transit(&urn("b"), &urn("a"), b"x"),
            TransitAction::Drop
        );
        assert_eq!(
            f.on_transit(&urn("a"), &urn("c"), b"x"),
            TransitAction::Pass
        );
        f.restart(&urn("b"));
        assert!(!f.is_down(&urn("b")));
        assert_eq!(
            f.on_transit(&urn("a"), &urn("b"), b"x"),
            TransitAction::Pass
        );
        assert_eq!(f.dropped_count(), 2);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let msg = vec![9u8; 64];
        let t1 = Tamperer::new(77, 0.5);
        let t2 = Tamperer::new(77, 0.5);
        for _ in 0..50 {
            assert_eq!(
                t1.on_transit(&urn("a"), &urn("b"), &msg),
                t2.on_transit(&urn("a"), &urn("b"), &msg)
            );
        }
    }
}
