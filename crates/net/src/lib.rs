//! The simulated open network the agent servers live on.
//!
//! The paper's threat model (Section 2) is defined over an open network
//! where *"the adversary can arbitrarily intercept and modify network-level
//! messages, or even delete them altogether and insert forged ones"*. A
//! simulator — rather than real sockets — is what lets this reproduction
//! *inject* those attacks deterministically and measure that the defenses
//! detect them, while also giving machine-independent byte and latency
//! accounting for the communication-volume experiments (X9, X10).
//!
//! Components:
//!
//! * [`time`] — a virtual clock; experiments report virtual nanoseconds.
//! * [`link`] — per-link latency/bandwidth/loss models.
//! * [`sim`] — [`SimNet`]: named endpoints, message delivery (threaded via
//!   crossbeam channels), per-link statistics.
//! * [`adversary`] — pluggable interceptors: eavesdropper, tamperer,
//!   forger, replayer, dropper — one per attack class in the paper.
//! * [`secure`] — [`secure::SecureChannel`]: mutually authenticated
//!   sessions (signed ephemeral Diffie–Hellman over the `ajanta-crypto`
//!   group) carrying confidential (SHA-CTR), integrity-protected
//!   (HMAC-SHA256), replay-protected (sequence windows) frames. This is
//!   the "privacy and integrity of communication" + "mutual
//!   authentication" layer of the paper's requirements list.
//! * [`transport`] — the [`Transport`] seam the runtime is generic
//!   over: the simulation and real sockets behind one object-safe
//!   contract.
//! * [`frame`] — varint length framing for byte streams, with typed
//!   (never panicking) decode errors.
//! * [`socket`] — [`SocketTransport`]: real TCP / Unix-domain
//!   listeners and dialers carrying secure-channel frames, for worlds
//!   that span OS processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod datagram;
pub mod frame;
pub mod link;
pub mod secure;
pub mod sim;
pub mod socket;
pub mod time;
pub mod transport;

pub use adversary::{
    Adversary, Dropper, Eavesdropper, Forger, LinkFault, Replayer, ServerCrash, Tamperer,
    TransitAction,
};
pub use datagram::{DatagramError, ReplayGuard, SealedDatagram};
pub use frame::{ChannelFrame, FrameBuffer, FrameError, MAX_FRAME};
pub use link::LinkModel;
pub use secure::{ChannelError, ChannelIdentity, PendingInitiation, SecureChannel};
pub use sim::{Delivery, Endpoint, NetError, NetStats, SimNet};
pub use socket::{NetAddr, SocketConfig, SocketTransport};
pub use time::{fmt_ns, VClock};
pub use transport::{FrameRejectHook, NetEndpoint, Transport, TransportKind, WriteBatchHook};
