//! Virtual time.
//!
//! All latencies, expirations and completion times in the reproduction are
//! **virtual nanoseconds** on a shared [`VClock`]. Virtual time makes every
//! experiment deterministic and machine-independent: a transfer over a
//! 50 ms link advances the clock by exactly the modeled amount whether the
//! host is fast or slow. Credential and proxy expiry in `ajanta-core` read
//! the same clock, so "expires in 10 ms" means 10 virtual milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotone virtual clock.
///
/// Cloning yields a handle to the same clock. Monotonicity is guaranteed
/// even under concurrent advancement (`fetch_max`).
#[derive(Debug, Clone, Default)]
pub struct VClock {
    now_ns: Arc<AtomicU64>,
}

impl VClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Advances the clock to at least `t` (no-op when already past).
    /// Returns the new current time.
    pub fn advance_to(&self, t: u64) -> u64 {
        self.now_ns.fetch_max(t, Ordering::AcqRel).max(t)
    }

    /// Advances the clock by `delta` nanoseconds from its current value
    /// and returns the new time.
    pub fn advance_by(&self, delta: u64) -> u64 {
        self.now_ns.fetch_add(delta, Ordering::AcqRel) + delta
    }
}

/// Convenience: nanoseconds per millisecond.
pub const MILLIS: u64 = 1_000_000;
/// Convenience: nanoseconds per microsecond.
pub const MICROS: u64 = 1_000;
/// Convenience: nanoseconds per second.
pub const SECONDS: u64 = 1_000_000_000;

/// Renders a nanosecond quantity with a human-scale unit (`ns`, `µs`,
/// `ms`, `s`), one decimal where it matters. Trace and histogram tooling
/// renders virtual durations through this so a 50 ms link reads as
/// "50ms", not "50000000".
pub fn fmt_ns(ns: u64) -> String {
    if ns >= SECONDS {
        format!("{:.2}s", ns as f64 / SECONDS as f64)
    } else if ns >= MILLIS {
        format!("{:.1}ms", ns as f64 / MILLIS as f64)
    } else if ns >= MICROS {
        format!("{:.1}µs", ns as f64 / MICROS as f64)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance_by(10), 10);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VClock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        // Going backwards is a no-op.
        assert_eq!(c.advance_to(50), 100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn clones_share_state() {
        let a = VClock::new();
        let b = a.clone();
        a.advance_to(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn concurrent_advancement_stays_monotone() {
        let c = VClock::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let c = c.clone();
                s.spawn(move || {
                    for j in 0..1000u64 {
                        c.advance_to(i * 1000 + j);
                    }
                });
            }
        });
        assert_eq!(c.now(), 7999);
    }

    #[test]
    fn unit_constants() {
        assert_eq!(MILLIS, 1_000 * MICROS);
        assert_eq!(SECONDS, 1_000 * MILLIS);
    }

    #[test]
    fn fmt_ns_picks_the_human_unit() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(50 * MILLIS), "50.0ms");
        assert_eq!(fmt_ns(2 * SECONDS + SECONDS / 4), "2.25s");
    }
}
