//! The transport seam: what an agent server needs from a network.
//!
//! [`crate::sim::SimNet`] was the only network this repo had, and the
//! runtime held it by value. This module extracts the contract the
//! runtime actually relies on — named endpoints, fire-and-forget
//! datagram delivery with an unauthenticated claimed origin, a shared
//! virtual clock, traffic stats, and an adversary hook — into an
//! object-safe [`Transport`] trait, so the same server loop runs
//! unchanged over the in-process simulation or over real sockets
//! ([`crate::socket::SocketTransport`]).
//!
//! Semantics every implementation must preserve:
//!
//! - **Unreliable, unordered datagrams.** `send_as` may silently drop
//!   (adversary, link loss, connection failure) and still return `Ok`;
//!   the runtime's ack/retry layer is what makes delivery reliable.
//!   Errors are reserved for *local* misconfiguration (unknown
//!   destination, transport shut down).
//! - **Unauthenticated origins.** The `from` name on a delivery is a
//!   claim; authentication happens above, in the sealed-datagram layer.
//! - **Virtual-time arrivals.** Every [`Delivery`] carries `arrival_ns`
//!   on the transport's [`VClock`]; receivers advance the clock to it
//!   when they consume the message. The simulation computes arrivals
//!   from a link model; socket transports stamp real wall-clock
//!   nanoseconds on a clock shared (via the UNIX epoch) across
//!   processes on the same machine.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;

use ajanta_naming::Urn;

use crate::adversary::Adversary;
use crate::link::LinkModel;
use crate::sim::{Delivery, Endpoint, NetError, NetStats, SimNet};
use crate::time::VClock;

/// Which concrete transport a [`Transport`] object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// The in-process simulation ([`SimNet`]).
    Sim,
    /// Real TCP sockets ([`crate::socket::SocketTransport`]).
    Tcp,
    /// Unix-domain sockets ([`crate::socket::SocketTransport`]).
    Uds,
}

impl TransportKind {
    /// A short lowercase label (`"sim"`, `"tcp"`, `"uds"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            TransportKind::Sim => "sim",
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Callback a transport invokes when it discards an inbound frame that
/// never made it to a [`Delivery`] — malformed framing, a handshake
/// failure, an unroutable destination. The argument is a short
/// human-readable reason. Servers use this to journal a rejection
/// event; the simulation never calls it (nothing malformed can enter a
/// channel that only ever carries well-formed sends).
pub type FrameRejectHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Callback a socket transport invokes after each coalesced stream
/// write, with the number of frames the write carried. Servers use
/// this to feed the frames-per-write histogram and coalescing
/// counters; the simulation never calls it (it has no write path).
pub type WriteBatchHook = Arc<dyn Fn(u64) + Send + Sync>;

/// One attached endpoint: the receive side of a name on some transport.
///
/// The trait mirrors [`Endpoint`]'s inherent API so the server loop can
/// `select!` over [`NetEndpoint::receiver`] exactly as it always did.
/// `recv`/`try_recv`/`recv_timeout` advance the transport clock to the
/// delivery's arrival instant; draining `receiver()` directly does not
/// (the caller must `advance_to` itself).
pub trait NetEndpoint: Send {
    /// The endpoint's global name.
    fn name(&self) -> &Urn;

    /// Sends `payload` to `to` with this endpoint's name as origin.
    fn send(&self, to: &Urn, payload: Vec<u8>) -> Result<(), NetError>;

    /// The raw delivery channel, for `select!`-style event loops.
    fn receiver(&self) -> &Receiver<Delivery>;

    /// Blocking receive; advances the clock to the arrival time.
    fn recv(&self) -> Result<Delivery, NetError>;

    /// Non-blocking receive; advances the clock on success.
    fn try_recv(&self) -> Result<Delivery, NetError>;

    /// Blocking receive with a real-time timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, NetError>;
}

/// A network a world of agent servers can run over.
///
/// Object-safe on purpose: the runtime holds `Arc<dyn Transport>` so a
/// single compiled server loop serves both the simulation and sockets.
pub trait Transport: Send + Sync {
    /// Which concrete transport this is.
    fn kind(&self) -> TransportKind;

    /// The transport's shared clock (virtual ns for the simulation,
    /// wall-clock ns since the UNIX epoch for socket transports).
    fn clock(&self) -> &VClock;

    /// Attaches a new endpoint named `name`.
    fn attach(&self, name: Urn) -> Result<Box<dyn NetEndpoint>, NetError>;

    /// Removes an endpoint (its queued messages are discarded).
    fn detach(&self, name: &Urn);

    /// Sends on behalf of `from` without holding its endpoint — the
    /// path worker threads that share a server's NIC use.
    fn send_as(&self, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError>;

    /// A snapshot of the traffic counters. On a multi-process socket
    /// transport these count this process's traffic only.
    fn stats(&self) -> NetStats;

    /// Resets the traffic counters (between experiment trials).
    fn reset_stats(&self);

    /// Installs (or clears) the network adversary. Socket transports
    /// apply it on the send path (before sealing), so `Tamper` and
    /// `Drop` behave exactly as on the simulation; what cannot be
    /// modeled is an adversary on the far side of a real wire.
    fn set_adversary(&self, adversary: Option<Arc<dyn Adversary>>);

    /// Overrides the model for the directed link `from → to`. Only the
    /// simulation models links; socket transports ignore this (the real
    /// wire *is* the link model) — see DESIGN.md's transport-seam notes.
    fn set_link(&self, from: Urn, to: Urn, model: LinkModel) {
        let _ = (from, to, model);
    }

    /// Installs the inbound-frame rejection hook (see
    /// [`FrameRejectHook`]). Default: discarded silently, which is what
    /// the simulation does since it cannot produce malformed frames.
    fn on_frame_reject(&self, hook: FrameRejectHook) {
        let _ = hook;
    }

    /// Installs the per-write batch hook (see [`WriteBatchHook`]).
    /// Default: no observation — only socket transports issue writes.
    fn on_write_batch(&self, hook: WriteBatchHook) {
        let _ = hook;
    }

    /// Releases listener/connection resources. Idempotent. The
    /// simulation has nothing to release.
    fn shutdown(&self) {}
}

impl Transport for SimNet {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn clock(&self) -> &VClock {
        SimNet::clock(self)
    }

    fn attach(&self, name: Urn) -> Result<Box<dyn NetEndpoint>, NetError> {
        SimNet::attach(self, name).map(|ep| Box::new(ep) as Box<dyn NetEndpoint>)
    }

    fn detach(&self, name: &Urn) {
        SimNet::detach(self, name);
    }

    fn send_as(&self, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        SimNet::send_as(self, from, to, payload)
    }

    fn stats(&self) -> NetStats {
        SimNet::stats(self)
    }

    fn reset_stats(&self) {
        SimNet::reset_stats(self);
    }

    fn set_adversary(&self, adversary: Option<Arc<dyn Adversary>>) {
        SimNet::set_adversary(self, adversary);
    }

    fn set_link(&self, from: Urn, to: Urn, model: LinkModel) {
        SimNet::set_link(self, from, to, model);
    }
}

impl NetEndpoint for Endpoint {
    fn name(&self) -> &Urn {
        Endpoint::name(self)
    }

    fn send(&self, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        Endpoint::send(self, to, payload)
    }

    fn receiver(&self) -> &Receiver<Delivery> {
        Endpoint::receiver(self)
    }

    fn recv(&self) -> Result<Delivery, NetError> {
        Endpoint::recv(self)
    }

    fn try_recv(&self) -> Result<Delivery, NetError> {
        Endpoint::try_recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, NetError> {
        Endpoint::recv_timeout(self, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Dropper;

    fn server(n: &str) -> Urn {
        Urn::server("seam.test", [n]).unwrap()
    }

    /// The whole point of the seam: code written against `dyn Transport`
    /// runs unchanged over the simulation.
    #[test]
    fn simnet_behind_the_trait_delivers() {
        let net: Arc<dyn Transport> = Arc::new(SimNet::new(LinkModel::local(), 7));
        assert_eq!(net.kind(), TransportKind::Sim);
        let a = net.attach(server("a")).unwrap();
        let b = net.attach(server("b")).unwrap();
        a.send(b.name(), b"over the seam".to_vec()).unwrap();
        let d = b.recv().unwrap();
        assert_eq!(d.from, *a.name());
        assert_eq!(d.payload, b"over the seam");
        assert_eq!(net.stats().messages_delivered, 1);

        // send_as works without holding the endpoint.
        net.send_as(a.name(), b.name(), vec![9]).unwrap();
        assert_eq!(b.recv().unwrap().payload, vec![9]);

        // Adversary and link hooks pass through.
        net.set_adversary(Some(Arc::new(Dropper::new(1, 1.0))));
        a.send(b.name(), vec![0]).unwrap();
        assert!(b.try_recv().is_err());
        net.set_adversary(None);
        net.set_link(
            server("a"),
            server("b"),
            LinkModel {
                latency_ns: 123,
                bandwidth_bps: 0,
                drop_prob: 0.0,
            },
        );
        net.reset_stats();
        a.send(b.name(), vec![1]).unwrap();
        assert_eq!(b.recv().unwrap().arrival_ns, net.clock().now());
        net.shutdown(); // no-op for the simulation
    }

    /// Dropping a boxed endpoint frees its name, same as the concrete type.
    #[test]
    fn boxed_endpoint_detaches_on_drop() {
        let net: Arc<dyn Transport> = Arc::new(SimNet::new(LinkModel::local(), 7));
        {
            let _e = net.attach(server("x")).unwrap();
            assert!(matches!(
                net.attach(server("x")),
                Err(NetError::NameInUse(_))
            ));
        }
        let _e2 = net.attach(server("x")).unwrap();
    }
}
