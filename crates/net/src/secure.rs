//! Mutually authenticated, confidential, integrity- and replay-protected
//! sessions — the paper's "privacy and integrity of communication" and
//! "mutual authentication of the agent and server" requirements
//! (Section 2), as a channel between agent servers.
//!
//! Protocol (`ajanta.sc.v1`):
//!
//! ```text
//! A → B : Hello    { a_name, a_chain, nonce_a, dh_a = g^xa, sig_a }
//! B → A : HelloAck { b_name, b_chain, nonce_b, dh_b = g^xb, sig_b }
//!
//! sig_a  = Sign_A( H("hs1" ‖ a_name ‖ b_name ‖ nonce_a ‖ dh_a) )
//! sig_b  = Sign_B( H("hs2" ‖ hello_bytes ‖ b_name ‖ nonce_b ‖ dh_b) )
//! secret = dh_peer ^ x  (ephemeral Diffie–Hellman in the crypto group)
//! k_enc  = SHA256("enc" ‖ secret ‖ nonce_a ‖ nonce_b)
//! k_mac  = SHA256("mac" ‖ secret ‖ nonce_a ‖ nonce_b)
//! ```
//!
//! Frames carry `(dir, seq, ciphertext, tag)`:
//! * ciphertext = plaintext ⊕ SHA-CTR keystream(k_enc, dir, seq);
//! * tag = HMAC(k_mac, dir ‖ seq ‖ ciphertext);
//! * receivers require exact in-order sequence numbers, so replays and
//!   drops surface as explicit errors.
//!
//! B's signature covers A's complete Hello, so a man-in-the-middle cannot
//! splice handshakes. (With the simulation-grade 62-bit group this is
//! structurally, not computationally, secure — see `ajanta-crypto`.)

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::modmath::pow_mod;
use ajanta_crypto::sig::{self, KeyPair, Signature, G, P, Q};
use ajanta_crypto::{DetRng, HmacSha256, RootOfTrust, Sha256};
use ajanta_naming::Urn;
use ajanta_wire::{
    decode_seq, encode_seq, varint_len, write_varint, Decoder, Encoder, Wire, WireError, MAX_LEN,
};

/// What a party needs to authenticate itself.
#[derive(Clone)]
pub struct ChannelIdentity {
    /// Our global name; must equal the leaf subject of `chain`.
    pub name: Urn,
    /// Our long-term signing keys.
    pub keys: KeyPair,
    /// Certificate chain, leaf first.
    pub chain: Vec<Certificate>,
}

/// Why a channel operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A handshake or frame failed to parse.
    Malformed(WireError),
    /// Peer's certificate chain did not validate.
    BadCertificate(String),
    /// Peer's handshake signature did not verify.
    BadHandshakeSignature,
    /// The Diffie–Hellman share was not a valid group element.
    BadGroupElement,
    /// The claimed name does not match the certified subject.
    NameMismatch {
        /// Name claimed in the handshake message.
        claimed: String,
        /// Subject certified by the chain.
        certified: String,
    },
    /// Frame MAC verification failed — tampering or forgery.
    BadMac,
    /// Frame sequence number was already consumed — replay.
    Replay {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number found on the frame.
        got: u64,
    },
    /// Frame sequence number skipped ahead — a frame was lost.
    Gap {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number found on the frame.
        got: u64,
    },
    /// Frame direction bit was ours, not the peer's (reflection attack).
    Reflected,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Malformed(e) => write!(f, "malformed message: {e}"),
            ChannelError::BadCertificate(e) => write!(f, "certificate invalid: {e}"),
            ChannelError::BadHandshakeSignature => f.write_str("handshake signature invalid"),
            ChannelError::BadGroupElement => f.write_str("bad Diffie-Hellman share"),
            ChannelError::NameMismatch { claimed, certified } => {
                write!(f, "claimed {claimed} but certified {certified}")
            }
            ChannelError::BadMac => f.write_str("frame MAC invalid (tampering detected)"),
            ChannelError::Replay { expected, got } => {
                write!(f, "replayed frame: expected seq {expected}, got {got}")
            }
            ChannelError::Gap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            ChannelError::Reflected => f.write_str("frame reflected back to its sender"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<WireError> for ChannelError {
    fn from(e: WireError) -> Self {
        ChannelError::Malformed(e)
    }
}

/// First handshake message (initiator → responder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Initiator's claimed name.
    pub from: Urn,
    /// Responder's name (binds the handshake to its target).
    pub to: Urn,
    /// Initiator certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Anti-replay nonce.
    pub nonce: u64,
    /// Ephemeral DH share `g^xa`.
    pub dh: u64,
    /// Signature over the handshake transcript.
    pub sig: Signature,
}

impl Wire for Hello {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        self.to.encode(e);
        encode_seq(&self.chain, e);
        e.put_varint(self.nonce);
        e.put_varint(self.dh);
        self.sig.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Hello {
            from: Urn::decode(d)?,
            to: Urn::decode(d)?,
            chain: decode_seq(d)?,
            nonce: d.get_varint()?,
            dh: d.get_varint()?,
            sig: Signature::decode(d)?,
        })
    }
}

/// Second handshake message (responder → initiator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// Responder's claimed name.
    pub from: Urn,
    /// Responder certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Responder nonce.
    pub nonce: u64,
    /// Ephemeral DH share `g^xb`.
    pub dh: u64,
    /// Signature over the transcript **including the full Hello bytes**.
    pub sig: Signature,
}

impl Wire for HelloAck {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        encode_seq(&self.chain, e);
        e.put_varint(self.nonce);
        e.put_varint(self.dh);
        self.sig.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(HelloAck {
            from: Urn::decode(d)?,
            chain: decode_seq(d)?,
            nonce: d.get_varint()?,
            dh: d.get_varint()?,
            sig: Signature::decode(d)?,
        })
    }
}

fn hello_transcript(from: &Urn, to: &Urn, nonce: u64, dh: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ajanta.sc.v1.hs1");
    h.update(from.to_string().as_bytes());
    h.update(to.to_string().as_bytes());
    h.update(nonce.to_be_bytes());
    h.update(dh.to_be_bytes());
    h.finalize().0
}

fn ack_transcript(hello_bytes: &[u8], from: &Urn, nonce: u64, dh: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ajanta.sc.v1.hs2");
    h.update((hello_bytes.len() as u64).to_be_bytes());
    h.update(hello_bytes);
    h.update(from.to_string().as_bytes());
    h.update(nonce.to_be_bytes());
    h.update(dh.to_be_bytes());
    h.finalize().0
}

fn derive_key(label: &[u8], secret: u64, nonce_a: u64, nonce_b: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(label);
    h.update(secret.to_be_bytes());
    h.update(nonce_a.to_be_bytes());
    h.update(nonce_b.to_be_bytes());
    h.finalize().0
}

/// Validates a peer chain and checks the certified subject matches the
/// claimed name. Returns the certified public key.
fn authenticate_peer(
    roots: &RootOfTrust,
    chain: &[Certificate],
    claimed: &Urn,
    now: u64,
) -> Result<sig::PublicKey, ChannelError> {
    let (subject, key) = roots
        .verify_chain(chain, now)
        .map_err(|e| ChannelError::BadCertificate(e.to_string()))?;
    let claimed_str = claimed.to_string();
    if subject != claimed_str {
        return Err(ChannelError::NameMismatch {
            claimed: claimed_str,
            certified: subject.to_string(),
        });
    }
    Ok(key)
}

/// An established session (one party's half).
///
/// Debug output never includes the session keys.
pub struct SecureChannel {
    peer: Urn,
    k_enc: [u8; 32],
    k_mac: [u8; 32],
    /// Our direction bit: initiator sends dir=0 frames, responder dir=1.
    dir: u8,
    send_seq: u64,
    recv_seq: u64,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureChannel")
            .field("peer", &self.peer)
            .field("dir", &self.dir)
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish_non_exhaustive()
    }
}

/// In-flight state for an initiator between `initiate` and `finish`.
pub struct PendingInitiation {
    hello_bytes: Vec<u8>,
    to: Urn,
    nonce: u64,
    dh_secret: u64,
}

impl SecureChannel {
    /// Initiator step 1: produce the `Hello` bytes to send and the pending
    /// state for [`PendingInitiation::finish`].
    pub fn initiate(
        identity: &ChannelIdentity,
        to: &Urn,
        rng: &mut DetRng,
    ) -> (Vec<u8>, PendingInitiation) {
        let nonce = rng.next_u64();
        let x = rng.range_inclusive(1, Q - 1);
        let dh = pow_mod(G, x, P);
        let tbs = hello_transcript(&identity.name, to, nonce, dh);
        let sig = identity.keys.sign(&tbs, rng);
        let hello = Hello {
            from: identity.name.clone(),
            to: to.clone(),
            chain: identity.chain.clone(),
            nonce,
            dh,
            sig,
        };
        let hello_bytes = hello.to_bytes();
        (
            hello_bytes.clone(),
            PendingInitiation {
                hello_bytes,
                to: to.clone(),
                nonce,
                dh_secret: x,
            },
        )
    }

    /// Responder: consume a `Hello`, authenticate the initiator, and
    /// produce the `HelloAck` bytes plus the established channel.
    pub fn respond(
        identity: &ChannelIdentity,
        roots: &RootOfTrust,
        hello_bytes: &[u8],
        now: u64,
        rng: &mut DetRng,
    ) -> Result<(Vec<u8>, SecureChannel), ChannelError> {
        let hello = Hello::from_bytes(hello_bytes)?;
        if hello.to != identity.name {
            return Err(ChannelError::NameMismatch {
                claimed: identity.name.to_string(),
                certified: hello.to.to_string(),
            });
        }
        let peer_key = authenticate_peer(roots, &hello.chain, &hello.from, now)?;
        // DH share must be a valid subgroup element (small-subgroup guard).
        if !sig::valid_public_key(&sig::PublicKey(hello.dh)) {
            return Err(ChannelError::BadGroupElement);
        }
        let tbs = hello_transcript(&hello.from, &hello.to, hello.nonce, hello.dh);
        sig::verify(&peer_key, &tbs, &hello.sig)
            .map_err(|_| ChannelError::BadHandshakeSignature)?;

        // Our ephemeral share.
        let nonce_b = rng.next_u64();
        let y = rng.range_inclusive(1, Q - 1);
        let dh_b = pow_mod(G, y, P);
        let ack_tbs = ack_transcript(hello_bytes, &identity.name, nonce_b, dh_b);
        let sig_b = identity.keys.sign(&ack_tbs, rng);
        let ack = HelloAck {
            from: identity.name.clone(),
            chain: identity.chain.clone(),
            nonce: nonce_b,
            dh: dh_b,
            sig: sig_b,
        };

        let secret = pow_mod(hello.dh, y, P);
        let channel = SecureChannel {
            peer: hello.from,
            k_enc: derive_key(b"enc", secret, hello.nonce, nonce_b),
            k_mac: derive_key(b"mac", secret, hello.nonce, nonce_b),
            dir: 1,
            send_seq: 0,
            recv_seq: 0,
        };
        Ok((ack.to_bytes(), channel))
    }

    /// The authenticated peer name.
    pub fn peer(&self) -> &Urn {
        &self.peer
    }

    /// Exact byte length `seal_into` will append for the *next* frame
    /// carrying `plaintext_len` payload bytes: `dir(1) ‖ varint(seq) ‖
    /// varint(len) ‖ ciphertext ‖ tag(32)`. Knowing this up front lets a
    /// caller write the outer frame's length header before sealing, so
    /// seal + frame is a single pass over one buffer.
    pub fn sealed_len(&self, plaintext_len: usize) -> usize {
        1 + varint_len(self.send_seq) + varint_len(plaintext_len as u64) + plaintext_len + 32
    }

    /// Encrypt-and-MAC one payload into a frame.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.sealed_len(plaintext.len()));
        self.seal_into(plaintext, &mut out);
        out
    }

    /// Encrypt-and-MAC one payload, appending the frame to `out`.
    ///
    /// Byte-identical to `seal`, but the ciphertext is produced in place
    /// on `out`'s tail: no intermediate `Vec` per frame, and a reused
    /// `out` amortises to zero allocations on the steady-state send path.
    pub fn seal_into(&mut self, plaintext: &[u8], out: &mut Vec<u8>) {
        out.reserve(self.sealed_len(plaintext.len()));
        let seq = self.send_seq;
        self.send_seq += 1;
        out.push(self.dir);
        write_varint(out, seq);
        write_varint(out, plaintext.len() as u64);
        let ct_start = out.len();
        out.extend_from_slice(plaintext);
        apply_keystream(&self.k_enc, self.dir, seq, &mut out[ct_start..]);
        let tag = frame_mac(&self.k_mac, self.dir, seq, &out[ct_start..]);
        out.extend_from_slice(&tag);
    }

    /// Verify-and-decrypt one frame from the peer.
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let mut out = Vec::new();
        self.open_into(frame, &mut out)?;
        Ok(out)
    }

    /// Verify-and-decrypt one frame, appending the plaintext to `out`.
    ///
    /// `out` is untouched unless the frame authenticates and carries the
    /// expected sequence number; a reused `out` gives the receive path
    /// the same zero-allocation steady state as `seal_into`.
    pub fn open_into(&mut self, frame: &[u8], out: &mut Vec<u8>) -> Result<(), ChannelError> {
        let mut d = Decoder::new(frame);
        let dir = d.get_u8()?;
        let seq = d.get_varint()?;
        let ct_len = d.get_varint()?;
        if ct_len > MAX_LEN {
            return Err(ChannelError::Malformed(WireError::TooLong(ct_len)));
        }
        let ciphertext = d.get_raw(ct_len as usize)?;
        let tag: [u8; 32] = d
            .get_raw(32)?
            .try_into()
            .expect("get_raw returns requested length");
        d.expect_end()?;

        if dir == self.dir {
            return Err(ChannelError::Reflected);
        }
        let expected_tag = frame_mac(&self.k_mac, dir, seq, ciphertext);
        // Non-short-circuit comparison, consistent with HmacSha256::verify.
        let mut diff = 0u8;
        for (a, b) in expected_tag.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(ChannelError::BadMac);
        }
        // MAC valid: now interpret the sequence number.
        match seq.cmp(&self.recv_seq) {
            std::cmp::Ordering::Less => Err(ChannelError::Replay {
                expected: self.recv_seq,
                got: seq,
            }),
            std::cmp::Ordering::Greater => Err(ChannelError::Gap {
                expected: self.recv_seq,
                got: seq,
            }),
            std::cmp::Ordering::Equal => {
                self.recv_seq += 1;
                let pt_start = out.len();
                out.extend_from_slice(ciphertext);
                apply_keystream(&self.k_enc, dir, seq, &mut out[pt_start..]);
                Ok(())
            }
        }
    }

    /// Frames sealed so far.
    pub fn frames_sent(&self) -> u64 {
        self.send_seq
    }

    /// Frames accepted so far.
    pub fn frames_received(&self) -> u64 {
        self.recv_seq
    }

    /// Splits the session into independently owned halves so a socket
    /// connection's writer and reader threads never share a lock: the
    /// first half must only `seal`, the second must only `open`. The
    /// two sequence counters are already independent (send_seq vs
    /// recv_seq), so the split changes no wire behaviour.
    pub(crate) fn split(self) -> (SecureChannel, SecureChannel) {
        let send = SecureChannel {
            peer: self.peer.clone(),
            k_enc: self.k_enc,
            k_mac: self.k_mac,
            dir: self.dir,
            send_seq: self.send_seq,
            recv_seq: self.recv_seq,
        };
        (send, self)
    }
}

impl PendingInitiation {
    /// Initiator step 2: consume the responder's `HelloAck`, authenticate
    /// it, and establish the channel.
    pub fn finish(
        self,
        roots: &RootOfTrust,
        ack_bytes: &[u8],
        now: u64,
    ) -> Result<SecureChannel, ChannelError> {
        let ack = HelloAck::from_bytes(ack_bytes)?;
        if ack.from != self.to {
            return Err(ChannelError::NameMismatch {
                claimed: ack.from.to_string(),
                certified: self.to.to_string(),
            });
        }
        let peer_key = authenticate_peer(roots, &ack.chain, &ack.from, now)?;
        if !sig::valid_public_key(&sig::PublicKey(ack.dh)) {
            return Err(ChannelError::BadGroupElement);
        }
        let tbs = ack_transcript(&self.hello_bytes, &ack.from, ack.nonce, ack.dh);
        sig::verify(&peer_key, &tbs, &ack.sig).map_err(|_| ChannelError::BadHandshakeSignature)?;

        let secret = pow_mod(ack.dh, self.dh_secret, P);
        Ok(SecureChannel {
            peer: ack.from,
            k_enc: derive_key(b"enc", secret, self.nonce, ack.nonce),
            k_mac: derive_key(b"mac", secret, self.nonce, ack.nonce),
            dir: 0,
            send_seq: 0,
            recv_seq: 0,
        })
    }
}

/// SHA-CTR keystream XOR, 32 bytes per block.
fn apply_keystream(key: &[u8; 32], dir: u8, seq: u64, data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(32).enumerate() {
        let mut h = Sha256::new();
        h.update(b"stream");
        h.update(key);
        h.update([dir]);
        h.update(seq.to_be_bytes());
        h.update((block_idx as u64).to_be_bytes());
        let block = h.finalize().0;
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
    }
}

fn frame_mac(key: &[u8; 32], dir: u8, seq: u64, ciphertext: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update([dir]);
    mac.update(seq.to_be_bytes());
    mac.update(ciphertext);
    mac.finalize().0
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        roots: RootOfTrust,
        alice: ChannelIdentity,
        bob: ChannelIdentity,
        rng: DetRng,
    }

    fn identity(
        name: &Urn,
        ca: &KeyPair,
        ca_name: &str,
        rng: &mut DetRng,
        serial: u64,
    ) -> ChannelIdentity {
        let keys = KeyPair::generate(rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            ca_name,
            ca,
            u64::MAX,
            serial,
            rng,
        );
        ChannelIdentity {
            name: name.clone(),
            keys,
            chain: vec![cert],
        }
    }

    fn world() -> World {
        let mut rng = DetRng::new(0xC0FFEE);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca.root", ca.public);
        let alice_name = Urn::server("a.org", ["alice"]).unwrap();
        let bob_name = Urn::server("b.org", ["bob"]).unwrap();
        let alice = identity(&alice_name, &ca, "ca.root", &mut rng, 1);
        let bob = identity(&bob_name, &ca, "ca.root", &mut rng, 2);
        World {
            roots,
            alice,
            bob,
            rng,
        }
    }

    fn establish(w: &mut World) -> (SecureChannel, SecureChannel) {
        let (hello, pending) = SecureChannel::initiate(&w.alice, &w.bob.name, &mut w.rng);
        let (ack, chan_b) =
            SecureChannel::respond(&w.bob, &w.roots, &hello, 0, &mut w.rng).unwrap();
        let chan_a = pending.finish(&w.roots, &ack, 0).unwrap();
        (chan_a, chan_b)
    }

    #[test]
    fn handshake_authenticates_both_sides() {
        let mut w = world();
        let (chan_a, chan_b) = establish(&mut w);
        assert_eq!(chan_a.peer(), &w.bob.name);
        assert_eq!(chan_b.peer(), &w.alice.name);
    }

    #[test]
    fn sealed_frames_roundtrip_both_directions() {
        let mut w = world();
        let (mut a, mut b) = establish(&mut w);
        for i in 0..10u64 {
            let msg = format!("frame {i} from a");
            let frame = a.seal(msg.as_bytes());
            assert_eq!(b.open(&frame).unwrap(), msg.as_bytes());

            let msg = format!("frame {i} from b");
            let frame = b.seal(msg.as_bytes());
            assert_eq!(a.open(&frame).unwrap(), msg.as_bytes());
        }
        assert_eq!(a.frames_sent(), 10);
        assert_eq!(a.frames_received(), 10);
    }

    fn clone_chan(c: &SecureChannel) -> SecureChannel {
        SecureChannel {
            peer: c.peer.clone(),
            k_enc: c.k_enc,
            k_mac: c.k_mac,
            dir: c.dir,
            send_seq: c.send_seq,
            recv_seq: c.recv_seq,
        }
    }

    #[test]
    fn seal_into_is_byte_identical_to_seal_and_reuses_the_buffer() {
        let mut w = world();
        let (a, mut b) = establish(&mut w);
        let mut via_seal = clone_chan(&a);
        let mut via_into = clone_chan(&a);
        // Push the sequence number across a varint width boundary too.
        via_seal.send_seq = 126;
        via_into.send_seq = 126;
        b.recv_seq = 126;

        let mut out = Vec::new();
        for len in [0usize, 1, 31, 32, 33, 100, 1000] {
            let payload = vec![0xA5u8; len];
            let expect = via_seal.seal(&payload);
            out.clear();
            let cap_before = out.capacity();
            via_into.seal_into(&payload, &mut out);
            assert_eq!(out, expect, "len {len}");
            if cap_before >= out.len() {
                assert_eq!(out.capacity(), cap_before, "no realloc for len {len}");
            }
            assert_eq!(b.open(&out).unwrap(), payload);
        }
    }

    #[test]
    fn sealed_len_predicts_exact_frame_length() {
        let mut w = world();
        let (mut a, _b) = establish(&mut w);
        for seq in [0u64, 1, 127, 128, 16_383, 16_384] {
            a.send_seq = seq;
            for len in [0usize, 5, 127, 128, 4096] {
                let predicted = a.sealed_len(len);
                let frame = a.seal(&vec![7u8; len]);
                assert_eq!(frame.len(), predicted, "seq {seq} len {len}");
                a.send_seq = seq; // rewind for the next payload size
            }
        }
    }

    #[test]
    fn open_into_appends_after_existing_bytes_and_skips_output_on_error() {
        let mut w = world();
        let (mut a, mut b) = establish(&mut w);
        let frame = a.seal(b"payload");
        let mut tampered = frame.clone();
        *tampered.last_mut().unwrap() ^= 1;

        let mut out = b"prefix:".to_vec();
        let mut b_probe = clone_chan(&b);
        assert_eq!(
            b_probe.open_into(&tampered, &mut out),
            Err(ChannelError::BadMac)
        );
        assert_eq!(out, b"prefix:", "failed open must not touch the buffer");

        b.open_into(&frame, &mut out).unwrap();
        assert_eq!(out, b"prefix:payload");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let mut w = world();
        let (mut a, _b) = establish(&mut w);
        let secret = b"credit card 4111-1111";
        let frame = a.seal(secret);
        // The plaintext must not appear anywhere in the frame.
        assert!(!frame
            .windows(secret.len())
            .any(|wnd| wnd == secret.as_slice()));
    }

    #[test]
    fn identical_plaintexts_encrypt_differently_per_seq() {
        let mut w = world();
        let (mut a, mut b) = establish(&mut w);
        let f1 = a.seal(b"same");
        let f2 = a.seal(b"same");
        assert_ne!(f1, f2);
        assert_eq!(b.open(&f1).unwrap(), b"same");
        assert_eq!(b.open(&f2).unwrap(), b"same");
    }

    #[test]
    fn tampering_detected_on_every_byte() {
        let mut w = world();
        let (mut a, mut b) = establish(&mut w);
        let frame = a.seal(b"important payload");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let mut b_clone = SecureChannel {
                peer: b.peer.clone(),
                k_enc: b.k_enc,
                k_mac: b.k_mac,
                dir: b.dir,
                send_seq: b.send_seq,
                recv_seq: b.recv_seq,
            };
            assert!(
                b_clone.open(&bad).is_err(),
                "byte {i} flip must not be accepted"
            );
        }
        // Original still fine.
        assert!(b.open(&frame).is_ok());
    }

    #[test]
    fn replay_detected() {
        let mut w = world();
        let (mut a, mut b) = establish(&mut w);
        let frame = a.seal(b"pay me once");
        b.open(&frame).unwrap();
        assert_eq!(
            b.open(&frame),
            Err(ChannelError::Replay {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn gaps_detected() {
        let mut w = world();
        let (mut a, mut b) = establish(&mut w);
        let _lost = a.seal(b"lost in transit");
        let second = a.seal(b"arrives first");
        assert_eq!(
            b.open(&second),
            Err(ChannelError::Gap {
                expected: 0,
                got: 1
            })
        );
    }

    #[test]
    fn reflection_detected() {
        let mut w = world();
        let (mut a, _b) = establish(&mut w);
        let frame = a.seal(b"to bob");
        // Attacker bounces A's own frame back at A.
        assert_eq!(a.open(&frame), Err(ChannelError::Reflected));
    }

    #[test]
    fn forged_frames_rejected() {
        let mut w = world();
        let (_a, mut b) = establish(&mut w);
        let mut forged = Encoder::new();
        forged.put_u8(0);
        forged.put_varint(0);
        forged.put_bytes(b"fake ciphertext");
        forged.put_raw(&[0u8; 32]);
        assert_eq!(b.open(&forged.finish()), Err(ChannelError::BadMac));
    }

    #[test]
    fn untrusted_initiator_rejected() {
        let mut w = world();
        // Mallory self-signs a certificate chain.
        let mallory_keys = KeyPair::generate(&mut w.rng);
        let mallory_name = Urn::server("evil.org", ["mallory"]).unwrap();
        let cert = Certificate::issue(
            mallory_name.to_string(),
            mallory_keys.public,
            "ca.evil",
            &mallory_keys,
            u64::MAX,
            1,
            &mut w.rng,
        );
        let mallory = ChannelIdentity {
            name: mallory_name,
            keys: mallory_keys,
            chain: vec![cert],
        };
        let (hello, _pending) = SecureChannel::initiate(&mallory, &w.bob.name, &mut w.rng);
        assert!(matches!(
            SecureChannel::respond(&w.bob, &w.roots, &hello, 0, &mut w.rng),
            Err(ChannelError::BadCertificate(_))
        ));
    }

    #[test]
    fn stolen_certificate_fails_signature_check() {
        let mut w = world();
        // Mallory presents Alice's genuine chain but signs with her own key.
        let mallory_keys = KeyPair::generate(&mut w.rng);
        let mallory = ChannelIdentity {
            name: w.alice.name.clone(),
            keys: mallory_keys,
            chain: w.alice.chain.clone(),
        };
        let (hello, _) = SecureChannel::initiate(&mallory, &w.bob.name, &mut w.rng);
        assert_eq!(
            SecureChannel::respond(&w.bob, &w.roots, &hello, 0, &mut w.rng).unwrap_err(),
            ChannelError::BadHandshakeSignature
        );
    }

    #[test]
    fn hello_meant_for_someone_else_rejected() {
        let mut w = world();
        let carol_name = Urn::server("c.org", ["carol"]).unwrap();
        let (hello, _) = SecureChannel::initiate(&w.alice, &carol_name, &mut w.rng);
        // Bob receives a Hello addressed to Carol.
        assert!(matches!(
            SecureChannel::respond(&w.bob, &w.roots, &hello, 0, &mut w.rng),
            Err(ChannelError::NameMismatch { .. })
        ));
    }

    #[test]
    fn tampered_hello_rejected() {
        let mut w = world();
        let (hello, _) = SecureChannel::initiate(&w.alice, &w.bob.name, &mut w.rng);
        for i in 0..hello.len() {
            let mut bad = hello.clone();
            bad[i] ^= 0x01;
            let mut rng = w.rng.fork("tamper-branch");
            assert!(
                SecureChannel::respond(&w.bob, &w.roots, &bad, 0, &mut rng).is_err(),
                "hello byte {i}"
            );
        }
    }

    #[test]
    fn spliced_ack_rejected() {
        // The responder's signature covers the initiator's Hello, so an
        // ack from a different session cannot be spliced in.
        let mut w = world();
        let (hello1, pending1) = SecureChannel::initiate(&w.alice, &w.bob.name, &mut w.rng);
        let (_hello2, pending2) = SecureChannel::initiate(&w.alice, &w.bob.name, &mut w.rng);
        let (ack1, _) = SecureChannel::respond(&w.bob, &w.roots, &hello1, 0, &mut w.rng).unwrap();
        // ack1 finishes session 1 but not session 2.
        assert!(pending2.finish(&w.roots, &ack1, 0).is_err());
        assert!(pending1.finish(&w.roots, &ack1, 0).is_ok());
    }

    #[test]
    fn invalid_dh_share_rejected() {
        let mut w = world();
        let (hello_bytes, _) = SecureChannel::initiate(&w.alice, &w.bob.name, &mut w.rng);
        let mut hello = Hello::from_bytes(&hello_bytes).unwrap();
        hello.dh = 1; // identity element: degenerate shared secret
                      // Re-sign so only the group check can complain.
        let tbs = hello_transcript(&hello.from, &hello.to, hello.nonce, hello.dh);
        hello.sig = w.alice.keys.sign(&tbs, &mut w.rng);
        assert_eq!(
            SecureChannel::respond(&w.bob, &w.roots, &hello.to_bytes(), 0, &mut w.rng).unwrap_err(),
            ChannelError::BadGroupElement
        );
    }

    #[test]
    fn expired_certificate_rejected_at_handshake_time() {
        let mut rng = DetRng::new(99);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca.root", ca.public);
        let name = Urn::server("a.org", ["stale"]).unwrap();
        let keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca.root",
            &ca,
            100,
            1,
            &mut rng,
        );
        let stale = ChannelIdentity {
            name: name.clone(),
            keys,
            chain: vec![cert],
        };
        let bob_name = Urn::server("b.org", ["bob"]).unwrap();
        let bob_keys = KeyPair::generate(&mut rng);
        let bob_cert = Certificate::issue(
            bob_name.to_string(),
            bob_keys.public,
            "ca.root",
            &ca,
            u64::MAX,
            2,
            &mut rng,
        );
        let bob = ChannelIdentity {
            name: bob_name,
            keys: bob_keys,
            chain: vec![bob_cert],
        };
        let (hello, _) = SecureChannel::initiate(&stale, &bob.name, &mut rng);
        // At now=500 the certificate (expiry 100) is stale.
        assert!(matches!(
            SecureChannel::respond(&bob, &roots, &hello, 500, &mut rng),
            Err(ChannelError::BadCertificate(_))
        ));
    }
}
