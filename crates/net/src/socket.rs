//! A real socket transport: TCP and Unix-domain streams behind the
//! [`Transport`] seam.
//!
//! Layering, bottom to top:
//!
//! 1. **Stream** — a TCP or Unix-domain byte pipe. One connection per
//!    (dialer, peer) pair, owned by that peer's writer thread and
//!    redialed on failure.
//! 2. **Frames** — [`crate::frame`] varint length framing cuts the pipe
//!    back into discrete records; malformed prefixes surface as typed
//!    errors and close the connection, never panic.
//! 3. **Secure channel** — every connection starts with the
//!    [`crate::secure`] mutual-authentication handshake (dialer
//!    initiates); each subsequent frame is sealed with the session
//!    keys. The channel is split into independently owned send/receive
//!    halves so the writer path and the reader thread never contend.
//! 4. **Channel frames** — the sealed plaintext is a [`ChannelFrame`]:
//!    claimed origin, destination endpoint, payload — the same triple
//!    [`Delivery`] carries on the simulation. The receiver stamps the
//!    arrival instant from its own clock.
//!
//! The transport clock is *wall-clock nanoseconds since the UNIX
//! epoch*, advanced by a ticker thread and at every send/receive: all
//! processes on one machine therefore share a clock epoch, which keeps
//! cross-process hop latencies and the sealed-datagram replay window
//! meaningful. (The [`crate::datagram::ReplayGuard`] only rejects
//! *stale* timestamps, so a receiver whose clock trails a sender's by
//! a tick never false-positives.) The wall is sampled **once**, at
//! bind, and extended by the monotonic clock thereafter ([`WallAnchor`]
//! internally) — a backwards NTP step after bind therefore cannot stall
//! the transport clock or freeze frame timestamps.
//!
//! **The outbound data plane is batched.** `send_as` never touches a
//! socket: it encodes the frame body into the destination peer's
//! outbound lane (pooled, grow-only buffers — zero heap allocation at
//! steady state) and wakes that peer's writer thread. The writer seals
//! everything queued since its last wakeup — each frame's varint
//! length header is written up front from [`SecureChannel::sealed_len`],
//! so encode → seal → frame is one pass over one buffer — and pushes
//! the whole batch through a single `write_all`. A burst of N frames
//! costs one syscall instead of N; the frames-per-write distribution is
//! observable via [`Transport::on_write_batch`] and the
//! `frames_coalesced` / `write_syscalls` counters in [`NetStats`].
//!
//! What the simulation models that a real wire cannot: [`LinkModel`]
//! latency/loss shaping (`set_link` is a no-op here — the wire is its
//! own link model) and adversaries between hosts. The [`Adversary`]
//! hook still applies on the send path, before sealing, so
//! `Drop`/`Tamper` fault injection behaves identically over sockets.
//!
//! [`LinkModel`]: crate::link::LinkModel

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex};

use ajanta_crypto::{DetRng, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_wire::{write_varint, Decoder, Wire};

use crate::adversary::{Adversary, TransitAction};
use crate::frame::{encode_channel_frame_into, encode_frame, ChannelFrame, FrameBuffer};
use crate::secure::{ChannelIdentity, SecureChannel};
use crate::sim::{Delivery, NetError, NetStats};
use crate::time::VClock;
use crate::transport::{FrameRejectHook, NetEndpoint, Transport, TransportKind, WriteBatchHook};

/// Clock-ticker cadence while traffic is flowing.
const TICK: Duration = Duration::from_millis(1);
/// Parked ticker / idle writer backstop wakeup, bounding how stale the
/// stop flag can go unnoticed.
const PARK_BACKSTOP: Duration = Duration::from_millis(250);
/// Blocked reads wake this often to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(100);
/// Bound on waiting for a handshake message.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Wall-clock nanoseconds since the UNIX epoch — sampled exactly once,
/// when a [`WallAnchor`] is created.
fn wall_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// A monotonic extension of one wall-clock sample.
///
/// The transport stamps every frame with "wall nanoseconds", but
/// `SystemTime` is not monotone: an NTP step (or a VM resume) can move
/// it backwards, and a naive `advance_to(wall_now_ns())` would then pin
/// the transport clock for the whole regression window — freezing hop
/// latencies at zero and aging every outbound datagram toward the
/// receiver's replay horizon. So the wall is read once, here, and all
/// later "wall" reads are `epoch + Instant::elapsed()`: same epoch, but
/// immune to steps in either direction.
struct WallAnchor {
    epoch_wall_ns: u64,
    epoch: std::time::Instant,
}

impl WallAnchor {
    fn new() -> Self {
        Self::at(wall_now_ns())
    }

    /// Anchors at an explicit epoch (tests simulate clock steps with
    /// this; production code uses [`WallAnchor::new`]).
    fn at(epoch_wall_ns: u64) -> Self {
        WallAnchor {
            epoch_wall_ns,
            epoch: std::time::Instant::now(),
        }
    }

    /// Wall nanoseconds now: the bind-time epoch plus monotonic elapsed
    /// time. Never decreases between calls.
    fn now_ns(&self) -> u64 {
        self.epoch_wall_ns
            .saturating_add(self.epoch.elapsed().as_nanos() as u64)
    }
}

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

/// A socket address a transport binds or dials: TCP or Unix-domain.
/// `Display`/`FromStr` round-trip (`tcp:127.0.0.1:4000`,
/// `uds:/tmp/a.sock`) so addresses travel through the multi-process
/// bootstrap exchange as plain text.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetAddr {
    /// A TCP address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl std::fmt::Display for NetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetAddr::Tcp(a) => write!(f, "tcp:{a}"),
            NetAddr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

impl std::str::FromStr for NetAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            rest.parse()
                .map(NetAddr::Tcp)
                .map_err(|e| format!("bad tcp address {rest:?}: {e}"))
        } else if let Some(rest) = s.strip_prefix("uds:") {
            Ok(NetAddr::Uds(PathBuf::from(rest)))
        } else {
            Err(format!("address {s:?} must start with tcp: or uds:"))
        }
    }
}

// ---------------------------------------------------------------------------
// Streams and listeners
// ---------------------------------------------------------------------------

/// One connected byte pipe, TCP or Unix-domain.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Stream {
    fn connect(addr: &NetAddr) -> std::io::Result<Stream> {
        match addr {
            NetAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            NetAddr::Uds(p) => Ok(Stream::Uds(UnixStream::connect(p)?)),
            #[cfg(not(unix))]
            NetAddr::Uds(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix-domain sockets unavailable on this platform",
            )),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Uds(s) => s.try_clone().map(Stream::Uds),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Uds(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl Listener {
    fn bind(addr: &NetAddr) -> std::io::Result<(Listener, NetAddr)> {
        match addr {
            NetAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let bound = NetAddr::Tcp(l.local_addr()?);
                l.set_nonblocking(true)?;
                Ok((Listener::Tcp(l), bound))
            }
            #[cfg(unix)]
            NetAddr::Uds(p) => {
                let l = UnixListener::bind(p)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Uds(l, p.clone()), NetAddr::Uds(p.clone())))
            }
            #[cfg(not(unix))]
            NetAddr::Uds(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix-domain sockets unavailable on this platform",
            )),
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    fn accept(&self) -> std::io::Result<Option<Stream>> {
        let res = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Uds(l, _) => l.accept().map(|(s, _)| Stream::Uds(s)),
        };
        match res {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// The outbound data plane
// ---------------------------------------------------------------------------

/// Lock-free traffic counters, bumped on every frame. A `Mutex<NetStats>`
/// here would be taken once per frame on the hottest path in the
/// transport; plain relaxed atomics make the accounting free.
#[derive(Default)]
struct TransportStats {
    messages_delivered: AtomicU64,
    messages_dropped: AtomicU64,
    messages_injected: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_delivered: AtomicU64,
    frames_coalesced: AtomicU64,
    write_syscalls: AtomicU64,
}

impl TransportStats {
    fn snapshot(&self) -> NetStats {
        NetStats {
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            messages_injected: self.messages_injected.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_delivered: self.bytes_delivered.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            write_syscalls: self.write_syscalls.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.messages_delivered.store(0, Ordering::Relaxed);
        self.messages_dropped.store(0, Ordering::Relaxed);
        self.messages_injected.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_delivered.store(0, Ordering::Relaxed);
        self.frames_coalesced.store(0, Ordering::Relaxed);
        self.write_syscalls.store(0, Ordering::Relaxed);
    }
}

/// Pending outbound traffic for one peer: `varint-length ‖ plaintext
/// channel-frame body` records appended by senders, drained in order by
/// the peer's writer thread. Bodies stay plaintext in the queue so a
/// redial can re-seal them on the fresh session — sealed bytes are
/// bound to one channel's keys and sequence space.
#[derive(Default)]
struct PeerTx {
    queue: Vec<u8>,
    frames: u64,
    /// Scratch for one encoded body (reused per enqueue, grow-only).
    scratch: Vec<u8>,
    /// Set when the writer has exited; late enqueues error instead of
    /// parking bytes nobody will ever drain.
    closed: bool,
}

/// One peer's outbound lane: the queue plus the condvar its writer
/// thread parks on. Created on first send to the peer, lives for the
/// transport's lifetime (connections come and go underneath it).
struct PeerLink {
    peer: Urn,
    tx: Mutex<PeerTx>,
    wake: Condvar,
}

/// What the transport keeps about a writer's established connection —
/// enough for `drop_connections` to kill it from outside.
struct ConnHandle {
    dead: Arc<AtomicBool>,
    raw: Stream,
}

/// The writer thread's view of its established connection.
struct WriterConn {
    /// Send half of the secure channel (the recv half lives on the
    /// connection's reader thread).
    chan: SecureChannel,
    stream: Stream,
    /// Set by the reader thread on EOF/error, by `drop_connections`,
    /// or by the writer itself on a failed write.
    dead: Arc<AtomicBool>,
}

// ---------------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------------

/// Configuration for [`SocketTransport::bind`].
pub struct SocketConfig {
    /// The identity every connection handshakes as (for a world
    /// server: that server's certified identity).
    pub identity: ChannelIdentity,
    /// Trust roots peer certificates must chain to.
    pub roots: RootOfTrust,
    /// Seed for handshake nonces and ephemerals.
    pub seed: u64,
}

struct SockInner {
    kind: TransportKind,
    clock: VClock,
    /// The one wall-clock sample this transport ever takes, extended
    /// monotonically — see [`WallAnchor`].
    wall: WallAnchor,
    identity: ChannelIdentity,
    roots: RootOfTrust,
    rng: Mutex<DetRng>,
    local: NetAddr,
    endpoints: Mutex<BTreeMap<Urn, Sender<Delivery>>>,
    routes: Mutex<BTreeMap<Urn, NetAddr>>,
    /// Per-peer outbound lanes (queue + writer thread), keyed by peer.
    links: Mutex<BTreeMap<Urn, Arc<PeerLink>>>,
    /// Established outbound connections, for `drop_connections`.
    conns: Mutex<BTreeMap<Urn, ConnHandle>>,
    adversary: Mutex<Option<Arc<dyn Adversary>>>,
    stats: TransportStats,
    reject: Mutex<Option<FrameRejectHook>>,
    write_hook: Mutex<Option<WriteBatchHook>>,
    /// `false` switches writers to one-frame-per-write — the pre-batching
    /// wire path, kept as the X18 bench baseline.
    coalesce: AtomicBool,
    stop: AtomicBool,
    /// Bumped by every send/receive; the ticker parks when it stops
    /// moving instead of spinning the clock forward for nobody.
    activity: AtomicU64,
    ticker_parked: AtomicBool,
    tick_lock: Mutex<()>,
    tick_cv: Condvar,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SockInner {
    /// Counts and reports an inbound frame that never became a
    /// [`Delivery`].
    fn reject_frame(&self, reason: &str) {
        self.stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
        let hook = self.reject.lock().clone();
        if let Some(hook) = hook {
            hook(reason);
        }
    }

    /// Reports one coalesced write of `frames` frames to the installed
    /// observer (if any) and the atomic counters.
    fn record_write_batch(&self, frames: u64) {
        self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
        self.stats
            .frames_coalesced
            .fetch_add(frames, Ordering::Relaxed);
        let hook = self.write_hook.lock().clone();
        if let Some(hook) = hook {
            hook(frames);
        }
    }

    /// Advances the clock to the wall instant and returns it. Also
    /// marks the transport active, unparking the ticker if it idled.
    fn touch_clock(&self) -> u64 {
        self.clock.advance_to(self.wall.now_ns());
        self.activity.fetch_add(1, Ordering::Release);
        if self.ticker_parked.load(Ordering::Acquire) {
            // Notify under the ticker's lock so the wakeup can't slip
            // between its activity re-check and its wait.
            let _guard = self.tick_lock.lock();
            self.tick_cv.notify_all();
        }
        self.clock.now()
    }

    /// Tracks a spawned thread for join-at-shutdown, reaping handles of
    /// threads that already finished so connection churn cannot grow
    /// the list without bound.
    fn track_thread(&self, handle: std::thread::JoinHandle<()>) {
        let mut threads = self.threads.lock();
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }

    /// Delivers one decoded channel frame to its local endpoint.
    fn route(&self, frame: ChannelFrame) {
        let sender = self.endpoints.lock().get(&frame.to).cloned();
        match sender {
            Some(tx) => {
                let arrival_ns = self.touch_clock();
                let size = frame.payload.len() as u64;
                // Count before the handoff so a receiver that already
                // holds the delivery never reads a stale counter; the
                // rare failed send undoes it.
                self.stats
                    .messages_delivered
                    .fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_delivered
                    .fetch_add(size, Ordering::Relaxed);
                if tx
                    .send(Delivery {
                        from: frame.from,
                        arrival_ns,
                        payload: frame.payload,
                    })
                    .is_err()
                {
                    self.stats
                        .messages_delivered
                        .fetch_sub(1, Ordering::Relaxed);
                    self.stats
                        .bytes_delivered
                        .fetch_sub(size, Ordering::Relaxed);
                    self.stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => self.reject_frame(&format!("no local endpoint {}", frame.to)),
        }
    }

    /// Dials `peer` through the route table, runs the handshake as
    /// initiator, and spawns the connection's reader thread. Called
    /// only from the peer's writer thread.
    fn connect(self: &Arc<Self>, peer: &Urn) -> Result<WriterConn, NetError> {
        let addr = self
            .routes
            .lock()
            .get(peer)
            .cloned()
            .ok_or_else(|| NetError::UnknownEndpoint(peer.clone()))?;
        let io = |e: std::io::Error| NetError::Io(format!("dial {addr}: {e}"));
        let mut stream = Stream::connect(&addr).map_err(io)?;

        let (hello, pending) = {
            let mut rng = self.rng.lock();
            SecureChannel::initiate(&self.identity, peer, &mut rng)
        };
        stream.write_all(&encode_frame(&hello)).map_err(io)?;
        let ack = read_one_frame(self, &mut stream, HANDSHAKE_TIMEOUT)
            .map_err(|e| NetError::Io(format!("handshake with {peer}: {e}")))?;
        let chan = pending
            .finish(&self.roots, &ack, self.touch_clock())
            .map_err(|e| NetError::Io(format!("handshake with {peer} failed: {e}")))?;
        let (send_half, recv_half) = chan.split();

        let reader = stream.try_clone().map_err(io)?;
        let raw = stream.try_clone().map_err(io)?;
        let dead = Arc::new(AtomicBool::new(false));
        if self.stop.load(Ordering::Acquire) {
            stream.shutdown();
            return Err(NetError::Disconnected);
        }
        let inner = Arc::clone(self);
        let reader_dead = Arc::clone(&dead);
        let handle = std::thread::Builder::new()
            .name("ajanta-conn".into())
            .spawn(move || reader_loop(inner, reader, recv_half, Some(reader_dead)))
            .expect("spawn reader thread");
        self.track_thread(handle);
        self.conns.lock().insert(
            peer.clone(),
            ConnHandle {
                dead: Arc::clone(&dead),
                raw,
            },
        );
        Ok(WriterConn {
            chan: send_half,
            stream,
            dead,
        })
    }

    /// The outbound lane for `peer`, creating it (and its writer
    /// thread) on first use.
    fn link_for(self: &Arc<Self>, peer: &Urn) -> Arc<PeerLink> {
        let mut links = self.links.lock();
        if let Some(link) = links.get(peer) {
            return Arc::clone(link);
        }
        let link = Arc::new(PeerLink {
            peer: peer.clone(),
            tx: Mutex::new(PeerTx::default()),
            wake: Condvar::new(),
        });
        links.insert(peer.clone(), Arc::clone(&link));
        drop(links);
        let inner = Arc::clone(self);
        let writer_link = Arc::clone(&link);
        let handle = std::thread::Builder::new()
            .name("ajanta-writer".into())
            .spawn(move || writer_loop(inner, writer_link))
            .expect("spawn writer thread");
        self.track_thread(handle);
        link
    }

    /// Queues one frame body on `to`'s outbound lane. The sender never
    /// touches the socket: it encodes the body into the lane's pooled
    /// buffers (zero heap allocation at steady state) and wakes the
    /// writer, which seals and coalesces everything queued into one
    /// stream write.
    fn enqueue_remote(
        self: &Arc<Self>,
        from: &Urn,
        to: &Urn,
        payload: &[u8],
    ) -> Result<(), NetError> {
        if !self.routes.lock().contains_key(to) {
            return Err(NetError::UnknownEndpoint(to.clone()));
        }
        let link = self.link_for(to);
        let mut tx = link.tx.lock();
        if tx.closed {
            return Err(NetError::Disconnected);
        }
        let PeerTx {
            queue,
            frames,
            scratch,
            ..
        } = &mut *tx;
        scratch.clear();
        encode_channel_frame_into(from, to, payload, scratch);
        write_varint(queue, scratch.len() as u64);
        queue.extend_from_slice(scratch);
        *frames += 1;
        drop(tx);
        link.wake.notify_one();
        Ok(())
    }

    /// Routes one frame: local endpoints short-circuit in-process,
    /// everything else goes through the peer's outbound lane.
    fn dispatch(self: &Arc<Self>, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        if self.endpoints.lock().contains_key(to) {
            self.route(ChannelFrame {
                from: from.clone(),
                to: to.clone(),
                payload,
            });
            return Ok(());
        }
        self.enqueue_remote(from, to, &payload)
    }

    /// Full send path: stats, adversary, local short-circuit, lane
    /// enqueue. Mirrors `SimNet::transmit` stage for stage.
    fn send_as(self: &Arc<Self>, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        if self.stop.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.touch_clock();

        // The adversary sits on the (conceptual) wire, before sealing —
        // the same position it occupies on the simulation.
        let adversary = self.adversary.lock().clone();
        match adversary.as_ref().map(|a| a.on_transit(from, to, &payload)) {
            None | Some(TransitAction::Pass) => self.dispatch(from, to, payload),
            Some(TransitAction::Tamper(modified)) => self.dispatch(from, to, modified),
            Some(TransitAction::Drop) => {
                self.stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
                Ok(()) // silently lost, as on a real network
            }
            Some(TransitAction::InjectAfter(extra)) => {
                self.stats
                    .messages_injected
                    .fetch_add(extra.len() as u64, Ordering::Relaxed);
                let sent = self.dispatch(from, to, payload);
                for (claimed_from, bytes) in extra {
                    // Injected frames share the primary's route; their
                    // failures surface identically, so the primary's
                    // result is the one reported.
                    let _ = self.dispatch(&claimed_from, to, bytes);
                }
                sent
            }
        }
    }
}

/// Splits the next `varint-length ‖ body` record off a lane queue. The
/// queue format is produced solely by `enqueue_remote`, so a malformed
/// record is a bug, not input.
fn split_next_body(buf: &[u8]) -> (&[u8], &[u8]) {
    let mut d = Decoder::new(buf);
    let len = d.get_varint().expect("lane queue varint") as usize;
    let consumed = buf.len() - d.remaining();
    (&buf[consumed..consumed + len], &buf[consumed + len..])
}

/// Drains one peer's outbound lane: waits for queued frame bodies,
/// seals each on the connection's channel with the outer frame header
/// written up front (one pass, no copies), and pushes the whole batch
/// through a single `write_all`. Owns the connection lifecycle — dials
/// lazily, redials once per batch on a failed write and re-seals on
/// the fresh session (reconnect-on-drop); a batch that still cannot be
/// written counts as dropped datagrams, which the runtime's ack/retry
/// layer recovers.
fn writer_loop(inner: Arc<SockInner>, link: Arc<PeerLink>) {
    let mut conn: Option<WriterConn> = None;
    // Swapped-in queue of length-prefixed plaintext bodies.
    let mut pending: Vec<u8> = Vec::new();
    let mut pending_frames: u64 = 0;
    // Sealed-and-framed bytes for one coalesced write.
    let mut out: Vec<u8> = Vec::new();

    loop {
        // Pull the next batch (or a single frame in baseline mode).
        {
            let mut tx = link.tx.lock();
            loop {
                if inner.stop.load(Ordering::Acquire) {
                    tx.closed = true;
                    let orphaned = tx.frames + pending_frames;
                    if orphaned > 0 {
                        inner
                            .stats
                            .messages_dropped
                            .fetch_add(orphaned, Ordering::Relaxed);
                    }
                    return;
                }
                if !tx.queue.is_empty() {
                    break;
                }
                tx = link.wake.wait_timeout(tx, PARK_BACKSTOP).0;
            }
            if inner.coalesce.load(Ordering::Relaxed) {
                std::mem::swap(&mut pending, &mut tx.queue);
                pending_frames = tx.frames;
                tx.frames = 0;
            } else {
                // Baseline (pre-batching) mode: one frame per write.
                let take = {
                    let (_, rest) = split_next_body(&tx.queue);
                    tx.queue.len() - rest.len()
                };
                pending.extend_from_slice(&tx.queue[..take]);
                tx.queue.drain(..take);
                tx.frames -= 1;
                pending_frames = 1;
            }
        }

        // Seal and write the batch; redial once on failure.
        let mut attempt = 0;
        loop {
            attempt += 1;
            if attempt > 2 {
                inner
                    .stats
                    .messages_dropped
                    .fetch_add(pending_frames, Ordering::Relaxed);
                break;
            }
            if conn
                .as_ref()
                .is_some_and(|c| c.dead.load(Ordering::Acquire))
            {
                conn = None;
            }
            let c = match &mut conn {
                Some(c) => c,
                None => match inner.connect(&link.peer) {
                    Ok(c) => conn.insert(c),
                    Err(_) => continue,
                },
            };
            out.clear();
            let mut rest: &[u8] = &pending;
            while !rest.is_empty() {
                let (body, tail) = split_next_body(rest);
                write_varint(&mut out, c.chan.sealed_len(body.len()) as u64);
                c.chan.seal_into(body, &mut out);
                rest = tail;
            }
            match c.stream.write_all(&out) {
                Ok(()) => {
                    inner.record_write_batch(pending_frames);
                    break;
                }
                Err(_) => {
                    // The plaintext batch is still in `pending`: a
                    // redial re-seals it on the fresh channel (sealed
                    // bytes cannot cross sessions).
                    c.dead.store(true, Ordering::Release);
                    c.stream.shutdown();
                    conn = None;
                }
            }
        }
        pending.clear();
        pending_frames = 0;
    }
}

/// Reads frames from `stream`, opens them on the receive half of the
/// channel, and routes the decoded channel frames. Exits on EOF,
/// stream error, framing error, or channel error (once a stream
/// misbehaves its sequence integrity is gone — the dialer reconnects).
fn reader_loop(
    inner: Arc<SockInner>,
    mut stream: Stream,
    mut chan: SecureChannel,
    dead: Option<Arc<AtomicBool>>,
) {
    // All three buffers are grow-only and reused across frames: the
    // receive path allocates nothing per frame until the decoded
    // `ChannelFrame` itself (whose payload the Delivery must own).
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 64 * 1024];
    let mut plain: Vec<u8> = Vec::new();
    'conn: loop {
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        fb.extend(&buf[..n]);
        loop {
            match fb.next_frame_ref() {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    plain.clear();
                    match chan.open_into(frame, &mut plain) {
                        Ok(()) => match ChannelFrame::from_bytes(&plain) {
                            Ok(cf) => inner.route(cf),
                            Err(e) => inner.reject_frame(&format!(
                                "undecodable channel frame from {}: {e}",
                                chan.peer()
                            )),
                        },
                        Err(e) => {
                            inner.reject_frame(&format!("channel error from {}: {e}", chan.peer()));
                            break 'conn;
                        }
                    }
                }
                Err(e) => {
                    inner.reject_frame(&format!("bad framing from {}: {e}", chan.peer()));
                    break 'conn;
                }
            }
        }
    }
    stream.shutdown();
    if let Some(dead) = dead {
        // Tell the peer's writer its connection is gone; the next batch
        // redials instead of writing into a dead socket.
        dead.store(true, Ordering::Release);
    }
}

/// The inbound side of an accepted connection: respond to the
/// handshake, then read frames until the peer goes away. Handshake
/// failures are rejected (journaled via the hook) and the stream is
/// closed — an unauthenticated peer never reaches the frame loop.
fn inbound_loop(inner: Arc<SockInner>, mut stream: Stream) {
    let hello = match read_one_frame(&inner, &mut stream, HANDSHAKE_TIMEOUT) {
        Ok(h) => h,
        Err(e) => {
            inner.reject_frame(&format!("inbound handshake never arrived: {e}"));
            stream.shutdown();
            return;
        }
    };
    let now = inner.touch_clock();
    let respond = {
        let mut rng = inner.rng.lock();
        SecureChannel::respond(&inner.identity, &inner.roots, &hello, now, &mut rng)
    };
    let (ack, chan) = match respond {
        Ok(x) => x,
        Err(e) => {
            inner.reject_frame(&format!("inbound handshake rejected: {e}"));
            stream.shutdown();
            return;
        }
    };
    if stream.write_all(&encode_frame(&ack)).is_err() {
        stream.shutdown();
        return;
    }
    // Inbound connections are receive-only: replies dial back through
    // the route table, so no send half is kept.
    let (_send_half, recv_half) = chan.split();
    reader_loop(inner, stream, recv_half, None);
}

fn accept_loop(inner: Arc<SockInner>, listener: Listener) {
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(Some(stream)) => {
                let _ = stream.set_read_timeout(Some(READ_POLL));
                if inner.stop.load(Ordering::Acquire) {
                    stream.shutdown();
                    break;
                }
                let conn_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("ajanta-conn".into())
                    .spawn(move || inbound_loop(conn_inner, stream))
                    .expect("spawn inbound thread");
                inner.track_thread(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => break,
        }
    }
}

/// Reads exactly one frame (handshake phase), bounded by `timeout` and
/// by transport shutdown (the read timeout doubles as the stop poll).
fn read_one_frame(
    inner: &SockInner,
    stream: &mut Stream,
    timeout: Duration,
) -> std::io::Result<Vec<u8>> {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let deadline = std::time::Instant::now() + timeout;
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = fb
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            return Ok(frame);
        }
        if inner.stop.load(Ordering::Acquire) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "transport shut down",
            ));
        }
        if std::time::Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "handshake timed out",
            ));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                ))
            }
            Ok(n) => fb.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A [`Transport`] over real TCP or Unix-domain sockets.
///
/// Bind one per process (or per server identity), register peer
/// listening addresses with [`SocketTransport::add_route`], then hand
/// it to the runtime as `Arc<dyn Transport>`. Sends enqueue on a
/// per-peer outbound lane; the lane's writer thread dials lazily on
/// the first batch, coalesces queued frames into single writes, and
/// redials once per batch when a write fails (reconnect-on-drop),
/// re-sealing the still-plaintext batch on the fresh session. A batch
/// that cannot be written counts as dropped — exactly a lost
/// datagram, which the runtime's retry layer already recovers.
pub struct SocketTransport {
    inner: Arc<SockInner>,
}

impl SocketTransport {
    /// Binds a listener on `addr` (`tcp:127.0.0.1:0` picks an
    /// ephemeral port; a `uds:` path must not exist yet) and starts
    /// the accept and clock-ticker threads.
    pub fn bind(addr: &NetAddr, config: SocketConfig) -> std::io::Result<SocketTransport> {
        let (listener, local) = Listener::bind(addr)?;
        let kind = match local {
            NetAddr::Tcp(_) => TransportKind::Tcp,
            NetAddr::Uds(_) => TransportKind::Uds,
        };
        let clock = VClock::new();
        let wall = WallAnchor::new();
        clock.advance_to(wall.now_ns());
        let inner = Arc::new(SockInner {
            kind,
            clock,
            wall,
            identity: config.identity,
            roots: config.roots,
            rng: Mutex::new(DetRng::new(config.seed)),
            local,
            endpoints: Mutex::new(BTreeMap::new()),
            routes: Mutex::new(BTreeMap::new()),
            links: Mutex::new(BTreeMap::new()),
            conns: Mutex::new(BTreeMap::new()),
            adversary: Mutex::new(None),
            stats: TransportStats::default(),
            reject: Mutex::new(None),
            write_hook: Mutex::new(None),
            coalesce: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            activity: AtomicU64::new(0),
            ticker_parked: AtomicBool::new(false),
            tick_lock: Mutex::new(()),
            tick_cv: Condvar::new(),
            threads: Mutex::new(Vec::new()),
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("ajanta-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))
            .expect("spawn accept thread");
        let tick_inner = Arc::clone(&inner);
        let ticker = std::thread::Builder::new()
            .name("ajanta-clock".into())
            .spawn(move || {
                // Tick the clock forward while traffic flows; park when
                // the activity counter stops moving (every send/receive
                // advances the clock itself, so an idle transport needs
                // no ticking — and no 1 ms wakeups).
                let mut last = u64::MAX;
                while !tick_inner.stop.load(Ordering::Acquire) {
                    let seen = tick_inner.activity.load(Ordering::Acquire);
                    if seen == last {
                        tick_inner.ticker_parked.store(true, Ordering::Release);
                        let guard = tick_inner.tick_lock.lock();
                        if tick_inner.activity.load(Ordering::Acquire) == last
                            && !tick_inner.stop.load(Ordering::Acquire)
                        {
                            let _ = tick_inner.tick_cv.wait_timeout(guard, PARK_BACKSTOP);
                        }
                        tick_inner.ticker_parked.store(false, Ordering::Release);
                        continue;
                    }
                    last = seen;
                    tick_inner.clock.advance_to(tick_inner.wall.now_ns());
                    std::thread::sleep(TICK);
                }
            })
            .expect("spawn ticker thread");
        {
            let mut threads = inner.threads.lock();
            threads.extend([accept, ticker]);
        }
        Ok(SocketTransport { inner })
    }

    /// The address the listener actually bound (resolves ephemeral
    /// ports) — what peers must `add_route` to reach this transport.
    pub fn local_addr(&self) -> NetAddr {
        self.inner.local.clone()
    }

    /// Registers where `peer` (a peer transport's identity name, i.e.
    /// its server URN) listens. Sends to that name dial this address.
    pub fn add_route(&self, peer: Urn, addr: NetAddr) {
        self.inner.routes.lock().insert(peer, addr);
    }

    /// Drops every cached connection; subsequent sends redial. Useful
    /// when peers are known to have restarted.
    pub fn drop_connections(&self) {
        let conns = std::mem::take(&mut *self.inner.conns.lock());
        for conn in conns.values() {
            conn.dead.store(true, Ordering::Release);
            conn.raw.shutdown();
        }
    }

    /// Enables or disables write coalescing. With `false`, each writer
    /// drains one frame per stream write — the pre-batching wire path —
    /// which is what the X18 bench measures the data plane against.
    /// Defaults to enabled.
    pub fn set_coalescing(&self, enabled: bool) {
        self.inner.coalesce.store(enabled, Ordering::Relaxed);
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        Transport::shutdown(self);
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind
    }

    fn clock(&self) -> &VClock {
        &self.inner.clock
    }

    fn attach(&self, name: Urn) -> Result<Box<dyn NetEndpoint>, NetError> {
        let (tx, rx) = unbounded();
        let mut eps = self.inner.endpoints.lock();
        if eps.contains_key(&name) {
            return Err(NetError::NameInUse(name));
        }
        eps.insert(name.clone(), tx);
        Ok(Box::new(SocketEndpoint {
            name,
            inner: Arc::clone(&self.inner),
            rx,
        }))
    }

    fn detach(&self, name: &Urn) {
        self.inner.endpoints.lock().remove(name);
    }

    fn send_as(&self, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.send_as(from, to, payload)
    }

    fn stats(&self) -> NetStats {
        self.inner.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.inner.stats.reset();
    }

    fn set_adversary(&self, adversary: Option<Arc<dyn Adversary>>) {
        *self.inner.adversary.lock() = adversary;
    }

    fn on_frame_reject(&self, hook: FrameRejectHook) {
        *self.inner.reject.lock() = Some(hook);
    }

    fn on_write_batch(&self, hook: WriteBatchHook) {
        *self.inner.write_hook.lock() = Some(hook);
    }

    fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unpark the ticker and every lane writer so they observe the
        // stop flag now instead of at their next backstop timeout.
        {
            let _guard = self.inner.tick_lock.lock();
            self.inner.tick_cv.notify_all();
        }
        for link in self.inner.links.lock().values() {
            let _guard = link.tx.lock();
            link.wake.notify_all();
        }
        self.drop_connections();
        loop {
            // Threads can spawn threads (accept → inbound), so drain
            // until the list is empty.
            let handles: Vec<_> = self.inner.threads.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

/// An endpoint attached to a [`SocketTransport`].
struct SocketEndpoint {
    name: Urn,
    inner: Arc<SockInner>,
    rx: Receiver<Delivery>,
}

impl NetEndpoint for SocketEndpoint {
    fn name(&self) -> &Urn {
        &self.name
    }

    fn send(&self, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.send_as(&self.name, to, payload)
    }

    fn receiver(&self) -> &Receiver<Delivery> {
        &self.rx
    }

    fn recv(&self) -> Result<Delivery, NetError> {
        let d = self.rx.recv().map_err(|_| NetError::Disconnected)?;
        self.inner.clock.advance_to(d.arrival_ns);
        Ok(d)
    }

    fn try_recv(&self) -> Result<Delivery, NetError> {
        match self.rx.try_recv() {
            Ok(d) => {
                self.inner.clock.advance_to(d.arrival_ns);
                Ok(d)
            }
            Err(TryRecvError::Empty) => Err(NetError::Empty),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => {
                self.inner.clock.advance_to(d.arrival_ns);
                Ok(d)
            }
            Err(_) => Err(NetError::Empty),
        }
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        self.inner.endpoints.lock().remove(&self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_crypto::cert::Certificate;
    use ajanta_crypto::KeyPair;

    fn identity(name: &Urn, ca: &KeyPair, rng: &mut DetRng, serial: u64) -> ChannelIdentity {
        let keys = KeyPair::generate(rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            ca,
            u64::MAX,
            serial,
            rng,
        );
        ChannelIdentity {
            name: name.clone(),
            keys,
            chain: vec![cert],
        }
    }

    /// Connection churn must not grow the thread-handle list without
    /// bound: finished reader/inbound handles are reaped whenever a new
    /// thread is tracked.
    #[test]
    fn thread_handles_are_reaped_under_connection_churn() {
        let mut rng = DetRng::new(41);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let a_name = Urn::server("churn-a.test", ["s"]).unwrap();
        let b_name = Urn::server("churn-b.test", ["s"]).unwrap();
        let addr: NetAddr = "tcp:127.0.0.1:0".parse().unwrap();
        let bind = |name: &Urn, rng: &mut DetRng, serial| {
            let id = identity(name, &ca, rng, serial);
            let seed = rng.next_u64();
            SocketTransport::bind(
                &addr,
                SocketConfig {
                    identity: id,
                    roots: roots.clone(),
                    seed,
                },
            )
            .expect("bind")
        };
        let ta = bind(&a_name, &mut rng, 1);
        let tb = bind(&b_name, &mut rng, 2);
        ta.add_route(b_name.clone(), tb.local_addr());
        let ea = ta.attach(a_name.clone()).unwrap();
        let eb = tb.attach(b_name.clone()).unwrap();

        let cycles: usize = 16;
        for i in 0..cycles {
            ea.send(&b_name, vec![i as u8]).unwrap();
            // Wait until the frame arrives so the connection is up...
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                match eb.recv_timeout(Duration::from_millis(200)) {
                    Ok(_) => break,
                    Err(_) => {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "cycle {i} never delivered"
                        );
                        // Writer may have hit a racing dead connection;
                        // datagram semantics allow the loss — resend.
                        ea.send(&b_name, vec![i as u8]).unwrap();
                    }
                }
            }
            // ...then kill it, stranding one reader thread per side.
            ta.drop_connections();
        }
        // Let the stranded readers notice their sockets died.
        std::thread::sleep(Duration::from_millis(300));
        // One more dial makes track_thread reap everything finished.
        ea.send(&b_name, vec![0xFF]).unwrap();
        let _ = eb.recv_timeout(Duration::from_secs(10));

        let tracked = ta.inner.threads.lock().len();
        assert!(
            tracked < cycles,
            "thread list grew with churn: {tracked} handles after {cycles} cycles"
        );
        ta.shutdown();
        tb.shutdown();
    }

    /// The regression the anchor exists for: before it, every
    /// `touch_clock` resampled `SystemTime`, so an NTP step backwards
    /// pinned the transport clock (`advance_to` is monotone) for the
    /// whole regression window — frames all stamped identically, hop
    /// latencies zero, outbound datagrams aging toward the peer's
    /// replay horizon. The anchored clock takes one wall sample and
    /// extends it monotonically, so a post-bind step in either
    /// direction is invisible.
    #[test]
    fn transport_clock_survives_backwards_wall_step() {
        // Bind-time wall reading: T0 = 10 s after the epoch.
        let t0 = 10 * crate::time::SECONDS;
        let anchor = WallAnchor::at(t0);
        let clock = VClock::new();
        clock.advance_to(anchor.now_ns());
        let at_bind = clock.now();
        assert!(at_bind >= t0);

        // NTP now steps the wall back 5 s. A resampling implementation
        // would feed this into advance_to and pin the clock until the
        // wall catches back up.
        let stepped_wall = t0 - 5 * crate::time::SECONDS;
        clock.advance_to(stepped_wall); // monotone: pins, never regresses
        assert_eq!(clock.now(), at_bind, "advance_to must never go back");

        // The anchored clock keeps moving through the regression window.
        std::thread::sleep(Duration::from_millis(5));
        let after = clock.advance_to(anchor.now_ns());
        assert!(
            after > at_bind,
            "anchored transport clock froze across a wall regression"
        );
        // And it stays on the bind-time epoch, not the stepped one.
        assert!(after > stepped_wall + 4 * crate::time::SECONDS);
    }

    /// Two samples of the same anchor never run backwards, regardless
    /// of what `SystemTime` does in between (it is never re-read).
    #[test]
    fn wall_anchor_is_monotone() {
        let anchor = WallAnchor::new();
        let mut last = anchor.now_ns();
        for _ in 0..1000 {
            let next = anchor.now_ns();
            assert!(next >= last);
            last = next;
        }
    }
}
