//! A real socket transport: TCP and Unix-domain streams behind the
//! [`Transport`] seam.
//!
//! Layering, bottom to top:
//!
//! 1. **Stream** — a TCP or Unix-domain byte pipe. One connection per
//!    (dialer, peer) pair, cached and redialed on failure.
//! 2. **Frames** — [`crate::frame`] varint length framing cuts the pipe
//!    back into discrete records; malformed prefixes surface as typed
//!    errors and close the connection, never panic.
//! 3. **Secure channel** — every connection starts with the
//!    [`crate::secure`] mutual-authentication handshake (dialer
//!    initiates); each subsequent frame is sealed with the session
//!    keys. The channel is split into independently owned send/receive
//!    halves so the writer path and the reader thread never contend.
//! 4. **Channel frames** — the sealed plaintext is a [`ChannelFrame`]:
//!    claimed origin, destination endpoint, payload — the same triple
//!    [`Delivery`] carries on the simulation. The receiver stamps the
//!    arrival instant from its own clock.
//!
//! The transport clock is *wall-clock nanoseconds since the UNIX
//! epoch*, advanced by a ticker thread and at every send/receive: all
//! processes on one machine therefore share a clock epoch, which keeps
//! cross-process hop latencies and the sealed-datagram replay window
//! meaningful. (The [`crate::datagram::ReplayGuard`] only rejects
//! *stale* timestamps, so a receiver whose clock trails a sender's by
//! a tick never false-positives.)
//!
//! What the simulation models that a real wire cannot: [`LinkModel`]
//! latency/loss shaping (`set_link` is a no-op here — the wire is its
//! own link model) and adversaries between hosts. The [`Adversary`]
//! hook still applies on the send path, before sealing, so
//! `Drop`/`Tamper` fault injection behaves identically over sockets.
//!
//! [`LinkModel`]: crate::link::LinkModel

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use ajanta_crypto::{DetRng, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_wire::Wire;

use crate::adversary::{Adversary, TransitAction};
use crate::frame::{encode_frame, ChannelFrame, FrameBuffer};
use crate::secure::{ChannelIdentity, SecureChannel};
use crate::sim::{Delivery, NetError, NetStats};
use crate::time::VClock;
use crate::transport::{FrameRejectHook, NetEndpoint, Transport, TransportKind};

/// Clock-ticker cadence.
const TICK: Duration = Duration::from_millis(1);
/// Blocked reads wake this often to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(100);
/// Bound on waiting for a handshake message.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Wall-clock nanoseconds since the UNIX epoch.
fn wall_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

/// A socket address a transport binds or dials: TCP or Unix-domain.
/// `Display`/`FromStr` round-trip (`tcp:127.0.0.1:4000`,
/// `uds:/tmp/a.sock`) so addresses travel through the multi-process
/// bootstrap exchange as plain text.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum NetAddr {
    /// A TCP address.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl std::fmt::Display for NetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetAddr::Tcp(a) => write!(f, "tcp:{a}"),
            NetAddr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

impl std::str::FromStr for NetAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            rest.parse()
                .map(NetAddr::Tcp)
                .map_err(|e| format!("bad tcp address {rest:?}: {e}"))
        } else if let Some(rest) = s.strip_prefix("uds:") {
            Ok(NetAddr::Uds(PathBuf::from(rest)))
        } else {
            Err(format!("address {s:?} must start with tcp: or uds:"))
        }
    }
}

// ---------------------------------------------------------------------------
// Streams and listeners
// ---------------------------------------------------------------------------

/// One connected byte pipe, TCP or Unix-domain.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Stream {
    fn connect(addr: &NetAddr) -> std::io::Result<Stream> {
        match addr {
            NetAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            NetAddr::Uds(p) => Ok(Stream::Uds(UnixStream::connect(p)?)),
            #[cfg(not(unix))]
            NetAddr::Uds(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix-domain sockets unavailable on this platform",
            )),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Uds(s) => s.try_clone().map(Stream::Uds),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Uds(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl Listener {
    fn bind(addr: &NetAddr) -> std::io::Result<(Listener, NetAddr)> {
        match addr {
            NetAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let bound = NetAddr::Tcp(l.local_addr()?);
                l.set_nonblocking(true)?;
                Ok((Listener::Tcp(l), bound))
            }
            #[cfg(unix)]
            NetAddr::Uds(p) => {
                let l = UnixListener::bind(p)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Uds(l, p.clone()), NetAddr::Uds(p.clone())))
            }
            #[cfg(not(unix))]
            NetAddr::Uds(_) => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix-domain sockets unavailable on this platform",
            )),
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    fn accept(&self) -> std::io::Result<Option<Stream>> {
        let res = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Uds(l, _) => l.accept().map(|(s, _)| Stream::Uds(s)),
        };
        match res {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// The write side of one established connection: the send half of the
/// secure channel and the stream under one lock, so seal order equals
/// write order.
struct ConnTx {
    chan: SecureChannel,
    stream: Stream,
}

struct Conn {
    /// Cache generation, so a dead reader only evicts *its own*
    /// connection from the cache, never a redialed successor.
    generation: u64,
    tx: Mutex<ConnTx>,
    /// Clone kept aside purely to shut the connection down.
    raw: Stream,
}

// ---------------------------------------------------------------------------
// The transport
// ---------------------------------------------------------------------------

/// Configuration for [`SocketTransport::bind`].
pub struct SocketConfig {
    /// The identity every connection handshakes as (for a world
    /// server: that server's certified identity).
    pub identity: ChannelIdentity,
    /// Trust roots peer certificates must chain to.
    pub roots: RootOfTrust,
    /// Seed for handshake nonces and ephemerals.
    pub seed: u64,
}

struct SockInner {
    kind: TransportKind,
    clock: VClock,
    identity: ChannelIdentity,
    roots: RootOfTrust,
    rng: Mutex<DetRng>,
    local: NetAddr,
    endpoints: Mutex<BTreeMap<Urn, Sender<Delivery>>>,
    routes: Mutex<BTreeMap<Urn, NetAddr>>,
    conns: Mutex<BTreeMap<Urn, Arc<Conn>>>,
    generation: AtomicU64,
    adversary: Mutex<Option<Arc<dyn Adversary>>>,
    stats: Mutex<NetStats>,
    reject: Mutex<Option<FrameRejectHook>>,
    stop: AtomicBool,
    /// Stream clones shut down at transport shutdown to unblock
    /// reader threads immediately.
    live: Mutex<Vec<Stream>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SockInner {
    /// Counts and reports an inbound frame that never became a
    /// [`Delivery`].
    fn reject_frame(&self, reason: &str) {
        self.stats.lock().messages_dropped += 1;
        let hook = self.reject.lock().clone();
        if let Some(hook) = hook {
            hook(reason);
        }
    }

    /// Advances the clock to the wall instant and returns it.
    fn touch_clock(&self) -> u64 {
        self.clock.advance_to(wall_now_ns());
        self.clock.now()
    }

    /// Delivers one decoded channel frame to its local endpoint.
    fn route(&self, frame: ChannelFrame) {
        let sender = self.endpoints.lock().get(&frame.to).cloned();
        match sender {
            Some(tx) => {
                let arrival_ns = self.touch_clock();
                let size = frame.payload.len() as u64;
                let mut stats = self.stats.lock();
                if tx
                    .send(Delivery {
                        from: frame.from,
                        arrival_ns,
                        payload: frame.payload,
                    })
                    .is_ok()
                {
                    stats.messages_delivered += 1;
                    stats.bytes_delivered += size;
                } else {
                    stats.messages_dropped += 1;
                }
            }
            None => self.reject_frame(&format!("no local endpoint {}", frame.to)),
        }
    }

    /// Registers a stream clone for shutdown and reports whether the
    /// transport is still running.
    fn register_live(&self, stream: &Stream) -> bool {
        if let Ok(clone) = stream.try_clone() {
            self.live.lock().push(clone);
        }
        if self.stop.load(Ordering::Acquire) {
            stream.shutdown();
            return false;
        }
        true
    }

    /// Dials `peer` at `addr`, runs the handshake as initiator, spawns
    /// the connection's reader thread.
    fn dial(self: &Arc<Self>, peer: &Urn, addr: &NetAddr) -> Result<Arc<Conn>, NetError> {
        let io = |e: std::io::Error| NetError::Io(format!("dial {addr}: {e}"));
        let mut stream = Stream::connect(addr).map_err(io)?;

        let (hello, pending) = {
            let mut rng = self.rng.lock();
            SecureChannel::initiate(&self.identity, peer, &mut rng)
        };
        stream.write_all(&encode_frame(&hello)).map_err(io)?;
        let ack = read_one_frame(&mut stream, HANDSHAKE_TIMEOUT)
            .map_err(|e| NetError::Io(format!("handshake with {peer}: {e}")))?;
        let chan = pending
            .finish(&self.roots, &ack, self.touch_clock())
            .map_err(|e| NetError::Io(format!("handshake with {peer} failed: {e}")))?;
        let (send_half, recv_half) = chan.split();

        let reader = stream.try_clone().map_err(io)?;
        let raw = stream.try_clone().map_err(io)?;
        let generation = self.generation.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn {
            generation,
            tx: Mutex::new(ConnTx {
                chan: send_half,
                stream,
            }),
            raw,
        });
        if !self.register_live(&reader) {
            return Err(NetError::Disconnected);
        }
        let inner = Arc::clone(self);
        let key = peer.clone();
        let handle = std::thread::Builder::new()
            .name("ajanta-conn".into())
            .spawn(move || reader_loop(inner, reader, recv_half, Some((key, generation))))
            .expect("spawn reader thread");
        self.threads.lock().push(handle);
        Ok(conn)
    }

    fn cached_or_dial(self: &Arc<Self>, peer: &Urn, addr: &NetAddr) -> Result<Arc<Conn>, NetError> {
        if let Some(conn) = self.conns.lock().get(peer) {
            return Ok(Arc::clone(conn));
        }
        let conn = self.dial(peer, addr)?;
        let mut conns = self.conns.lock();
        if let Some(existing) = conns.get(peer) {
            // A concurrent dial won the race; keep the first connection.
            let existing = Arc::clone(existing);
            drop(conns);
            conn.raw.shutdown();
            return Ok(existing);
        }
        conns.insert(peer.clone(), Arc::clone(&conn));
        Ok(conn)
    }

    /// Seals and writes one channel frame to `peer`, redialing once if
    /// the cached connection's write fails (reconnect-on-drop).
    fn send_framed(
        self: &Arc<Self>,
        peer: &Urn,
        addr: &NetAddr,
        frame: &ChannelFrame,
    ) -> Result<(), NetError> {
        let bytes = frame.to_bytes();
        let mut last_err = None;
        for _ in 0..2 {
            let conn = self.cached_or_dial(peer, addr)?;
            let mut tx = conn.tx.lock();
            let sealed = tx.chan.seal(&bytes);
            match tx.stream.write_all(&encode_frame(&sealed)) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    drop(tx);
                    self.evict(peer, conn.generation);
                    conn.raw.shutdown();
                    last_err = Some(NetError::Io(format!("write to {peer}: {e}")));
                }
            }
        }
        Err(last_err.expect("loop ran"))
    }

    /// Removes the cached connection for `peer` — but only the given
    /// generation, so a reconnect is never evicted by its predecessor's
    /// late death.
    fn evict(&self, peer: &Urn, generation: u64) {
        let mut conns = self.conns.lock();
        if conns.get(peer).is_some_and(|c| c.generation == generation) {
            conns.remove(peer);
        }
    }

    /// Full send path: stats, adversary, local short-circuit, framed
    /// socket delivery. Mirrors `SimNet::transmit` stage for stage.
    fn send_as(self: &Arc<Self>, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        if self.stop.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        self.stats.lock().bytes_sent += payload.len() as u64;
        self.touch_clock();

        // The adversary sits on the (conceptual) wire, before sealing —
        // the same position it occupies on the simulation.
        let adversary = self.adversary.lock().clone();
        let mut to_deliver: Vec<(Urn, Vec<u8>)> = Vec::with_capacity(1);
        match adversary.as_ref().map(|a| a.on_transit(from, to, &payload)) {
            None | Some(TransitAction::Pass) => to_deliver.push((from.clone(), payload)),
            Some(TransitAction::Tamper(modified)) => to_deliver.push((from.clone(), modified)),
            Some(TransitAction::Drop) => {
                self.stats.lock().messages_dropped += 1;
                return Ok(()); // silently lost, as on a real network
            }
            Some(TransitAction::InjectAfter(extra)) => {
                to_deliver.push((from.clone(), payload));
                self.stats.lock().messages_injected += extra.len() as u64;
                to_deliver.extend(extra);
            }
        }

        // Local endpoints short-circuit (same-process delivery).
        if self.endpoints.lock().contains_key(to) {
            for (claimed_from, bytes) in to_deliver {
                self.route(ChannelFrame {
                    from: claimed_from,
                    to: to.clone(),
                    payload: bytes,
                });
            }
            return Ok(());
        }

        let addr = self
            .routes
            .lock()
            .get(to)
            .cloned()
            .ok_or_else(|| NetError::UnknownEndpoint(to.clone()))?;
        for (claimed_from, bytes) in to_deliver {
            let frame = ChannelFrame {
                from: claimed_from,
                to: to.clone(),
                payload: bytes,
            };
            if self.send_framed(to, &addr, &frame).is_err() {
                // A dead peer is a lost datagram, not a send error: the
                // runtime's ack/retry layer recovers, as for any drop.
                self.stats.lock().messages_dropped += 1;
            }
        }
        Ok(())
    }
}

/// Reads frames from `stream`, opens them on the receive half of the
/// channel, and routes the decoded channel frames. Exits on EOF,
/// stream error, framing error, or channel error (once a stream
/// misbehaves its sequence integrity is gone — the dialer reconnects).
fn reader_loop(
    inner: Arc<SockInner>,
    mut stream: Stream,
    mut chan: SecureChannel,
    cache_key: Option<(Urn, u64)>,
) {
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: loop {
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        fb.extend(&buf[..n]);
        loop {
            match fb.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => match chan.open(&frame) {
                    Ok(plain) => match ChannelFrame::from_bytes(&plain) {
                        Ok(cf) => inner.route(cf),
                        Err(e) => inner.reject_frame(&format!(
                            "undecodable channel frame from {}: {e}",
                            chan.peer()
                        )),
                    },
                    Err(e) => {
                        inner.reject_frame(&format!("channel error from {}: {e}", chan.peer()));
                        break 'conn;
                    }
                },
                Err(e) => {
                    inner.reject_frame(&format!("bad framing from {}: {e}", chan.peer()));
                    break 'conn;
                }
            }
        }
    }
    stream.shutdown();
    if let Some((peer, generation)) = cache_key {
        inner.evict(&peer, generation);
    }
}

/// The inbound side of an accepted connection: respond to the
/// handshake, then read frames until the peer goes away. Handshake
/// failures are rejected (journaled via the hook) and the stream is
/// closed — an unauthenticated peer never reaches the frame loop.
fn inbound_loop(inner: Arc<SockInner>, mut stream: Stream) {
    let hello = match read_one_frame(&mut stream, HANDSHAKE_TIMEOUT) {
        Ok(h) => h,
        Err(e) => {
            inner.reject_frame(&format!("inbound handshake never arrived: {e}"));
            stream.shutdown();
            return;
        }
    };
    let now = inner.touch_clock();
    let respond = {
        let mut rng = inner.rng.lock();
        SecureChannel::respond(&inner.identity, &inner.roots, &hello, now, &mut rng)
    };
    let (ack, chan) = match respond {
        Ok(x) => x,
        Err(e) => {
            inner.reject_frame(&format!("inbound handshake rejected: {e}"));
            stream.shutdown();
            return;
        }
    };
    if stream.write_all(&encode_frame(&ack)).is_err() {
        stream.shutdown();
        return;
    }
    // Inbound connections are receive-only: replies dial back through
    // the route table, so no send half is kept.
    let (_send_half, recv_half) = chan.split();
    reader_loop(inner, stream, recv_half, None);
}

fn accept_loop(inner: Arc<SockInner>, listener: Listener) {
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(Some(stream)) => {
                let _ = stream.set_read_timeout(Some(READ_POLL));
                if !inner.register_live(&stream) {
                    break;
                }
                let conn_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("ajanta-conn".into())
                    .spawn(move || inbound_loop(conn_inner, stream))
                    .expect("spawn inbound thread");
                inner.threads.lock().push(handle);
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => break,
        }
    }
}

/// Reads exactly one frame (handshake phase), bounded by `timeout`.
fn read_one_frame(stream: &mut Stream, timeout: Duration) -> std::io::Result<Vec<u8>> {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let deadline = std::time::Instant::now() + timeout;
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = fb
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            return Ok(frame);
        }
        if std::time::Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "handshake timed out",
            ));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                ))
            }
            Ok(n) => fb.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A [`Transport`] over real TCP or Unix-domain sockets.
///
/// Bind one per process (or per server identity), register peer
/// listening addresses with [`SocketTransport::add_route`], then hand
/// it to the runtime as `Arc<dyn Transport>`. Connections are dialed
/// lazily on first send to a peer, cached per peer, and redialed once
/// when a cached connection's write fails (reconnect-on-drop); a
/// failed redial counts the frame as dropped — exactly a lost
/// datagram, which the runtime's retry layer already recovers.
pub struct SocketTransport {
    inner: Arc<SockInner>,
}

impl SocketTransport {
    /// Binds a listener on `addr` (`tcp:127.0.0.1:0` picks an
    /// ephemeral port; a `uds:` path must not exist yet) and starts
    /// the accept and clock-ticker threads.
    pub fn bind(addr: &NetAddr, config: SocketConfig) -> std::io::Result<SocketTransport> {
        let (listener, local) = Listener::bind(addr)?;
        let kind = match local {
            NetAddr::Tcp(_) => TransportKind::Tcp,
            NetAddr::Uds(_) => TransportKind::Uds,
        };
        let clock = VClock::new();
        clock.advance_to(wall_now_ns());
        let inner = Arc::new(SockInner {
            kind,
            clock,
            identity: config.identity,
            roots: config.roots,
            rng: Mutex::new(DetRng::new(config.seed)),
            local,
            endpoints: Mutex::new(BTreeMap::new()),
            routes: Mutex::new(BTreeMap::new()),
            conns: Mutex::new(BTreeMap::new()),
            generation: AtomicU64::new(0),
            adversary: Mutex::new(None),
            stats: Mutex::new(NetStats::default()),
            reject: Mutex::new(None),
            stop: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("ajanta-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))
            .expect("spawn accept thread");
        let tick_inner = Arc::clone(&inner);
        let ticker = std::thread::Builder::new()
            .name("ajanta-clock".into())
            .spawn(move || {
                while !tick_inner.stop.load(Ordering::Acquire) {
                    tick_inner.clock.advance_to(wall_now_ns());
                    std::thread::sleep(TICK);
                }
            })
            .expect("spawn ticker thread");
        inner.threads.lock().extend([accept, ticker]);
        Ok(SocketTransport { inner })
    }

    /// The address the listener actually bound (resolves ephemeral
    /// ports) — what peers must `add_route` to reach this transport.
    pub fn local_addr(&self) -> NetAddr {
        self.inner.local.clone()
    }

    /// Registers where `peer` (a peer transport's identity name, i.e.
    /// its server URN) listens. Sends to that name dial this address.
    pub fn add_route(&self, peer: Urn, addr: NetAddr) {
        self.inner.routes.lock().insert(peer, addr);
    }

    /// Drops every cached connection; subsequent sends redial. Useful
    /// when peers are known to have restarted.
    pub fn drop_connections(&self) {
        let conns = std::mem::take(&mut *self.inner.conns.lock());
        for conn in conns.values() {
            conn.raw.shutdown();
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        Transport::shutdown(self);
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind
    }

    fn clock(&self) -> &VClock {
        &self.inner.clock
    }

    fn attach(&self, name: Urn) -> Result<Box<dyn NetEndpoint>, NetError> {
        let (tx, rx) = unbounded();
        let mut eps = self.inner.endpoints.lock();
        if eps.contains_key(&name) {
            return Err(NetError::NameInUse(name));
        }
        eps.insert(name.clone(), tx);
        Ok(Box::new(SocketEndpoint {
            name,
            inner: Arc::clone(&self.inner),
            rx,
        }))
    }

    fn detach(&self, name: &Urn) {
        self.inner.endpoints.lock().remove(name);
    }

    fn send_as(&self, from: &Urn, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.send_as(from, to, payload)
    }

    fn stats(&self) -> NetStats {
        self.inner.stats.lock().clone()
    }

    fn reset_stats(&self) {
        *self.inner.stats.lock() = NetStats::default();
    }

    fn set_adversary(&self, adversary: Option<Arc<dyn Adversary>>) {
        *self.inner.adversary.lock() = adversary;
    }

    fn on_frame_reject(&self, hook: FrameRejectHook) {
        *self.inner.reject.lock() = Some(hook);
    }

    fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for stream in self.inner.live.lock().drain(..) {
            stream.shutdown();
        }
        self.drop_connections();
        loop {
            // Threads can spawn threads (accept → inbound), so drain
            // until the list is empty.
            let handles: Vec<_> = self.inner.threads.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

/// An endpoint attached to a [`SocketTransport`].
struct SocketEndpoint {
    name: Urn,
    inner: Arc<SockInner>,
    rx: Receiver<Delivery>,
}

impl NetEndpoint for SocketEndpoint {
    fn name(&self) -> &Urn {
        &self.name
    }

    fn send(&self, to: &Urn, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.send_as(&self.name, to, payload)
    }

    fn receiver(&self) -> &Receiver<Delivery> {
        &self.rx
    }

    fn recv(&self) -> Result<Delivery, NetError> {
        let d = self.rx.recv().map_err(|_| NetError::Disconnected)?;
        self.inner.clock.advance_to(d.arrival_ns);
        Ok(d)
    }

    fn try_recv(&self) -> Result<Delivery, NetError> {
        match self.rx.try_recv() {
            Ok(d) => {
                self.inner.clock.advance_to(d.arrival_ns);
                Ok(d)
            }
            Err(TryRecvError::Empty) => Err(NetError::Empty),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => {
                self.inner.clock.advance_to(d.arrival_ns);
                Ok(d)
            }
            Err(_) => Err(NetError::Empty),
        }
    }
}

impl Drop for SocketEndpoint {
    fn drop(&mut self) {
        self.inner.endpoints.lock().remove(&self.name);
    }
}
