//! Link models: how long a message takes and whether it survives.

use serde::{Deserialize, Serialize};

use crate::time::{MICROS, MILLIS};

/// Latency/bandwidth/loss model for one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Fixed propagation delay, virtual ns.
    pub latency_ns: u64,
    /// Throughput in bytes per virtual second (0 = infinite).
    pub bandwidth_bps: u64,
    /// Probability a message is silently lost, in [0, 1].
    pub drop_prob: f64,
}

impl Default for LinkModel {
    /// A campus LAN: 0.5 ms, ~12.5 MB/s, lossless — roughly the 100 Mbit
    /// Ethernet of the paper's era.
    fn default() -> Self {
        LinkModel {
            latency_ns: 500 * MICROS,
            bandwidth_bps: 12_500_000,
            drop_prob: 0.0,
        }
    }
}

impl LinkModel {
    /// A loopback-grade link for colocated servers.
    pub fn local() -> Self {
        LinkModel {
            latency_ns: 10 * MICROS,
            bandwidth_bps: 1_250_000_000,
            drop_prob: 0.0,
        }
    }

    /// A 1998-era wide-area internet path: 40 ms, ~150 KB/s.
    pub fn wan() -> Self {
        LinkModel {
            latency_ns: 40 * MILLIS,
            bandwidth_bps: 150_000,
            drop_prob: 0.0,
        }
    }

    /// A lossy variant of any model.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
        self
    }

    /// A variant with different latency.
    pub fn with_latency_ns(mut self, ns: u64) -> Self {
        self.latency_ns = ns;
        self
    }

    /// Transit time for a message of `size` bytes: propagation plus
    /// serialization at the modeled bandwidth.
    pub fn transit_ns(&self, size: usize) -> u64 {
        let serialization = if self.bandwidth_bps == 0 {
            0
        } else {
            // ns = bytes * 1e9 / bytes_per_sec, in u128 to avoid overflow.
            ((size as u128 * 1_000_000_000) / self.bandwidth_bps as u128) as u64
        };
        self.latency_ns + serialization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transit_time_adds_serialization() {
        let link = LinkModel {
            latency_ns: 1_000,
            bandwidth_bps: 1_000_000, // 1 byte per microsecond
            drop_prob: 0.0,
        };
        assert_eq!(link.transit_ns(0), 1_000);
        assert_eq!(link.transit_ns(1), 2_000);
        assert_eq!(link.transit_ns(1000), 1_001_000);
    }

    #[test]
    fn zero_bandwidth_means_infinite() {
        let link = LinkModel {
            latency_ns: 5,
            bandwidth_bps: 0,
            drop_prob: 0.0,
        };
        assert_eq!(link.transit_ns(1 << 30), 5);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let msg = 10_000;
        assert!(LinkModel::local().transit_ns(msg) < LinkModel::default().transit_ns(msg));
        assert!(LinkModel::default().transit_ns(msg) < LinkModel::wan().transit_ns(msg));
    }

    #[test]
    fn with_loss_sets_probability() {
        let l = LinkModel::default().with_loss(0.25);
        assert_eq!(l.drop_prob, 0.25);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn with_loss_rejects_bad_probability() {
        let _ = LinkModel::default().with_loss(1.5);
    }

    #[test]
    fn no_overflow_on_huge_messages() {
        let link = LinkModel::wan();
        // 4 GiB message should not overflow the ns computation.
        let t = link.transit_ns(4 << 30);
        assert!(t > link.latency_ns);
    }
}
