//! One-shot sealed datagrams for server-to-server messages.
//!
//! The agent-transfer protocol wants *stateless* secure messaging: a
//! server should be able to hand an agent to a peer it has never spoken
//! to, without a session handshake in flight while its event loop is busy
//! hosting agents. A [`SealedDatagram`] is hybrid encryption against the
//! recipient's **static** certified key (ECIES-shaped):
//!
//! ```text
//! sender:   x ←$, epk = g^x, secret = recipient_pk ^ x
//!           k_enc/k_mac = H(label ‖ secret ‖ epk ‖ nonce)
//!           ciphertext  = payload ⊕ SHA-CTR(k_enc)
//!           tag         = HMAC(k_mac, header ‖ ciphertext)
//!           sig         = Sign_sender( H(header ‖ ciphertext ‖ tag) )
//! receiver: secret = epk ^ sk, re-derive keys, check tag, verify the
//!           sender's chain + signature, check recipient-name binding,
//!           reject stale timestamps and replayed nonces.
//! ```
//!
//! Replay protection is receiver-side: a [`ReplayGuard`] remembers nonces
//! within a freshness window; anything outside the window is stale by
//! timestamp alone.

use std::collections::BTreeMap;

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::modmath::pow_mod;
use ajanta_crypto::sig::{self, KeyPair, Signature, G, P, Q};
use ajanta_crypto::{DetRng, HmacSha256, RootOfTrust, Sha256};
use ajanta_naming::Urn;
use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire, WireError};

use crate::secure::ChannelIdentity;

/// Why a datagram failed to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatagramError {
    /// Structural decoding failed.
    Malformed(WireError),
    /// The datagram names a different recipient.
    WrongRecipient {
        /// Recipient named in the datagram.
        named: String,
        /// Us.
        us: String,
    },
    /// The ephemeral share is not a valid group element.
    BadGroupElement,
    /// Integrity tag mismatch — tampering.
    BadTag,
    /// The sender's certificate chain failed validation.
    BadCertificate(String),
    /// The sender's signature failed.
    BadSignature,
    /// Timestamp outside the freshness window.
    Stale {
        /// Datagram timestamp.
        sent_at: u64,
        /// Receiver's current time.
        now: u64,
    },
    /// Nonce already seen — replay.
    Replayed(u64),
}

impl DatagramError {
    /// Whether this rejection is in the **replay class** (a stale
    /// timestamp or a reused nonce) as opposed to tampering/decode
    /// failures. Telemetry uses this to file the event under
    /// `RejectKind::Replay` rather than `RejectKind::BadDatagram`.
    pub fn is_replay(&self) -> bool {
        matches!(
            self,
            DatagramError::Stale { .. } | DatagramError::Replayed(_)
        )
    }
}

impl std::fmt::Display for DatagramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatagramError::Malformed(e) => write!(f, "malformed datagram: {e}"),
            DatagramError::WrongRecipient { named, us } => {
                write!(f, "datagram for {named}, we are {us}")
            }
            DatagramError::BadGroupElement => f.write_str("bad ephemeral key"),
            DatagramError::BadTag => f.write_str("integrity tag mismatch"),
            DatagramError::BadCertificate(e) => write!(f, "sender certificate: {e}"),
            DatagramError::BadSignature => f.write_str("sender signature invalid"),
            DatagramError::Stale { sent_at, now } => {
                write!(f, "stale datagram: sent {sent_at}, now {now}")
            }
            DatagramError::Replayed(n) => write!(f, "replayed nonce {n}"),
        }
    }
}

impl std::error::Error for DatagramError {}

impl From<WireError> for DatagramError {
    fn from(e: WireError) -> Self {
        DatagramError::Malformed(e)
    }
}

/// A sealed, signed, one-shot message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedDatagram {
    /// Sender name.
    pub from: Urn,
    /// Recipient name (bound into the MAC and signature).
    pub to: Urn,
    /// Sender certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Ephemeral public share `g^x`.
    pub epk: u64,
    /// Anti-replay nonce.
    pub nonce: u64,
    /// Virtual send time.
    pub sent_at: u64,
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC over header ‖ ciphertext.
    pub tag: [u8; 32],
    /// Sender signature over everything above.
    pub sig: Signature,
}

fn header_bytes(from: &Urn, to: &Urn, epk: u64, nonce: u64, sent_at: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    from.encode(&mut e);
    to.encode(&mut e);
    e.put_varint(epk);
    e.put_varint(nonce);
    e.put_varint(sent_at);
    e.finish()
}

fn derive(label: &[u8], secret: u64, epk: u64, nonce: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ajanta.dgram.v1");
    h.update(label);
    h.update(secret.to_be_bytes());
    h.update(epk.to_be_bytes());
    h.update(nonce.to_be_bytes());
    h.finalize().0
}

fn keystream_xor(key: &[u8; 32], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(32).enumerate() {
        let mut h = Sha256::new();
        h.update(b"dgram.stream");
        h.update(key);
        h.update((i as u64).to_be_bytes());
        let block = h.finalize().0;
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
    }
}

fn signed_hash(header: &[u8], ciphertext: &[u8], tag: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ajanta.dgram.sig.v1");
    h.update(header);
    h.update(ciphertext);
    h.update(tag);
    h.finalize().0
}

impl SealedDatagram {
    /// Seals `payload` from `identity` to `to`, whose static public key is
    /// `recipient_key` (from its certificate, via the server directory).
    pub fn seal(
        identity: &ChannelIdentity,
        to: &Urn,
        recipient_key: sig::PublicKey,
        payload: &[u8],
        now: u64,
        rng: &mut DetRng,
    ) -> SealedDatagram {
        let x = rng.range_inclusive(1, Q - 1);
        let epk = pow_mod(G, x, P);
        let secret = pow_mod(recipient_key.0, x, P);
        let nonce = rng.next_u64();
        let k_enc = derive(b"enc", secret, epk, nonce);
        let k_mac = derive(b"mac", secret, epk, nonce);

        let mut ciphertext = payload.to_vec();
        keystream_xor(&k_enc, &mut ciphertext);

        let header = header_bytes(&identity.name, to, epk, nonce, now);
        let mut mac = HmacSha256::new(&k_mac);
        mac.update(&header);
        mac.update(&ciphertext);
        let tag = mac.finalize().0;

        let sig = identity
            .keys
            .sign(&signed_hash(&header, &ciphertext, &tag), rng);
        SealedDatagram {
            from: identity.name.clone(),
            to: to.clone(),
            chain: identity.chain.clone(),
            epk,
            nonce,
            sent_at: now,
            ciphertext,
            tag,
            sig,
        }
    }

    /// Opens a datagram addressed to `identity`. On success returns the
    /// authenticated sender name and the plaintext.
    ///
    /// `recipient_secret_exponent` is the discrete log of the recipient's
    /// static key — held by [`ChannelIdentity`] indirectly; we pass the
    /// keypair so the secret never leaves `ajanta-crypto` types.
    pub fn open(
        &self,
        identity: &ChannelIdentity,
        recipient_keys: &KeyPair,
        roots: &RootOfTrust,
        now: u64,
        guard: &mut ReplayGuard,
    ) -> Result<(Urn, Vec<u8>), DatagramError> {
        if self.to != identity.name {
            return Err(DatagramError::WrongRecipient {
                named: self.to.to_string(),
                us: identity.name.to_string(),
            });
        }
        if !sig::valid_public_key(&sig::PublicKey(self.epk)) {
            return Err(DatagramError::BadGroupElement);
        }
        // Freshness and replay first: they do not require crypto.
        guard.check(self.nonce, self.sent_at, now)?;

        let secret = recipient_keys.raise(self.epk);
        let k_enc = derive(b"enc", secret, self.epk, self.nonce);
        let k_mac = derive(b"mac", secret, self.epk, self.nonce);

        let header = header_bytes(&self.from, &self.to, self.epk, self.nonce, self.sent_at);
        let mut mac = HmacSha256::new(&k_mac);
        mac.update(&header);
        mac.update(&self.ciphertext);
        let expected = mac.finalize().0;
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(self.tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(DatagramError::BadTag);
        }

        // Authenticate the sender.
        let (subject, sender_key) = roots
            .verify_chain(&self.chain, now)
            .map_err(|e| DatagramError::BadCertificate(e.to_string()))?;
        if subject != self.from.to_string() {
            return Err(DatagramError::BadCertificate(format!(
                "chain certifies {subject}, datagram claims {}",
                self.from
            )));
        }
        sig::verify(
            &sender_key,
            &signed_hash(&header, &self.ciphertext, &self.tag),
            &self.sig,
        )
        .map_err(|_| DatagramError::BadSignature)?;

        // All checks passed: commit the nonce and decrypt.
        guard.commit(self.nonce, self.sent_at);
        let mut plaintext = self.ciphertext.clone();
        keystream_xor(&k_enc, &mut plaintext);
        Ok((self.from.clone(), plaintext))
    }
}

impl Wire for SealedDatagram {
    fn encode(&self, e: &mut Encoder) {
        self.from.encode(e);
        self.to.encode(e);
        encode_seq(&self.chain, e);
        e.put_varint(self.epk);
        e.put_varint(self.nonce);
        e.put_varint(self.sent_at);
        e.put_bytes(&self.ciphertext);
        e.put_raw(&self.tag);
        self.sig.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SealedDatagram {
            from: Urn::decode(d)?,
            to: Urn::decode(d)?,
            chain: decode_seq(d)?,
            epk: d.get_varint()?,
            nonce: d.get_varint()?,
            sent_at: d.get_varint()?,
            ciphertext: d.get_bytes()?,
            tag: d.get_raw(32)?.try_into().expect("fixed width"),
            sig: Signature::decode(d)?,
        })
    }
}

/// Receiver-side replay protection: remembers nonces whose timestamps are
/// still within the freshness window.
#[derive(Debug)]
pub struct ReplayGuard {
    /// Maximum accepted age (virtual ns). Also bounds memory: nonces older
    /// than the window are purged.
    window_ns: u64,
    seen: BTreeMap<u64, u64>, // nonce -> sent_at
}

impl ReplayGuard {
    /// A guard accepting datagrams at most `window_ns` old.
    pub fn new(window_ns: u64) -> Self {
        ReplayGuard {
            window_ns,
            seen: BTreeMap::new(),
        }
    }

    fn check(&self, nonce: u64, sent_at: u64, now: u64) -> Result<(), DatagramError> {
        if now > sent_at.saturating_add(self.window_ns) {
            return Err(DatagramError::Stale { sent_at, now });
        }
        if self.seen.contains_key(&nonce) {
            return Err(DatagramError::Replayed(nonce));
        }
        Ok(())
    }

    fn commit(&mut self, nonce: u64, sent_at: u64) {
        self.seen.insert(nonce, sent_at);
        // Opportunistic purge of expired entries.
        if self.seen.len().is_multiple_of(64) {
            let window = self.window_ns;
            let horizon = sent_at.saturating_sub(window);
            self.seen.retain(|_, &mut t| t >= horizon);
        }
    }

    /// Number of remembered nonces.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no nonces are remembered.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        roots: RootOfTrust,
        a: ChannelIdentity,
        a_keys: KeyPair,
        b: ChannelIdentity,
        b_keys: KeyPair,
        rng: DetRng,
    }

    fn world() -> World {
        let mut rng = DetRng::new(99);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let mk = |name: &Urn, serial, rng: &mut DetRng| {
            let keys = KeyPair::generate(rng);
            let cert = Certificate::issue(
                name.to_string(),
                keys.public,
                "ca",
                &ca,
                u64::MAX,
                serial,
                rng,
            );
            (
                ChannelIdentity {
                    name: name.clone(),
                    keys: keys.clone(),
                    chain: vec![cert],
                },
                keys,
            )
        };
        let an = Urn::server("a.org", ["a"]).unwrap();
        let bn = Urn::server("b.org", ["b"]).unwrap();
        let (a, a_keys) = mk(&an, 1, &mut rng);
        let (b, b_keys) = mk(&bn, 2, &mut rng);
        World {
            roots,
            a,
            a_keys,
            b,
            b_keys,
            rng,
        }
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut w = world();
        let d = SealedDatagram::seal(
            &w.a,
            &w.b.name,
            w.b_keys.public,
            b"agent image bytes",
            1_000,
            &mut w.rng,
        );
        let mut guard = ReplayGuard::new(1_000_000);
        let (from, payload) = d
            .open(&w.b, &w.b_keys, &w.roots, 1_500, &mut guard)
            .unwrap();
        assert_eq!(from, w.a.name);
        assert_eq!(payload, b"agent image bytes");
        let _ = &w.a_keys;
    }

    #[test]
    fn wire_roundtrip() {
        let mut w = world();
        let d = SealedDatagram::seal(&w.a, &w.b.name, w.b_keys.public, b"x", 0, &mut w.rng);
        assert_eq!(SealedDatagram::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn payload_is_confidential() {
        let mut w = world();
        let secret = b"credit card 4111";
        let d = SealedDatagram::seal(&w.a, &w.b.name, w.b_keys.public, secret, 0, &mut w.rng);
        let bytes = d.to_bytes();
        assert!(!bytes
            .windows(secret.len())
            .any(|wd| wd == secret.as_slice()));
    }

    #[test]
    fn replay_rejected_original_accepted_once() {
        let mut w = world();
        let d = SealedDatagram::seal(&w.a, &w.b.name, w.b_keys.public, b"pay", 0, &mut w.rng);
        let mut guard = ReplayGuard::new(1_000_000);
        d.open(&w.b, &w.b_keys, &w.roots, 10, &mut guard).unwrap();
        assert_eq!(
            d.open(&w.b, &w.b_keys, &w.roots, 20, &mut guard),
            Err(DatagramError::Replayed(d.nonce))
        );
    }

    #[test]
    fn stale_rejected_without_nonce_memory() {
        let mut w = world();
        let d = SealedDatagram::seal(&w.a, &w.b.name, w.b_keys.public, b"old", 0, &mut w.rng);
        let mut guard = ReplayGuard::new(100);
        assert_eq!(
            d.open(&w.b, &w.b_keys, &w.roots, 200, &mut guard),
            Err(DatagramError::Stale {
                sent_at: 0,
                now: 200
            })
        );
        assert!(guard.is_empty());
    }

    #[test]
    fn tampering_detected() {
        let mut w = world();
        let d = SealedDatagram::seal(&w.a, &w.b.name, w.b_keys.public, b"payload!", 0, &mut w.rng);
        let mut guard = ReplayGuard::new(1_000_000);
        // Flip a ciphertext byte.
        let mut bad = d.clone();
        bad.ciphertext[0] ^= 1;
        assert_eq!(
            bad.open(&w.b, &w.b_keys, &w.roots, 0, &mut guard),
            Err(DatagramError::BadTag)
        );
        // Flip a header field (recipient swap is caught by name check;
        // change sent_at instead).
        let mut bad = d.clone();
        bad.sent_at += 1;
        assert_eq!(
            bad.open(&w.b, &w.b_keys, &w.roots, 1, &mut guard),
            Err(DatagramError::BadTag)
        );
        // Flip the tag itself.
        let mut bad = d;
        bad.tag[5] ^= 4;
        assert_eq!(
            bad.open(&w.b, &w.b_keys, &w.roots, 0, &mut guard),
            Err(DatagramError::BadTag)
        );
    }

    #[test]
    fn signature_binds_sender() {
        let mut w = world();
        // Mallory (with a valid cert of her own) re-signs A's datagram as
        // herself but keeps A's `from` — signature check fails; claiming
        // her own name breaks nothing else but then the chain subject
        // matches her, yet the MAC'd header contains A, so the tag fails
        // first. Test both paths.
        let d = SealedDatagram::seal(&w.a, &w.b.name, w.b_keys.public, b"m", 0, &mut w.rng);
        let mut guard = ReplayGuard::new(1_000_000);

        // Path 1: swap signature for garbage.
        let mut bad = d.clone();
        bad.sig = Signature { e: 1, s: 1 };
        assert_eq!(
            bad.open(&w.b, &w.b_keys, &w.roots, 0, &mut guard),
            Err(DatagramError::BadSignature)
        );

        // Path 2: present a chain for a different subject.
        let mut bad = d;
        bad.chain = w.b.chain.clone(); // certifies b, not a
        assert!(matches!(
            bad.open(&w.b, &w.b_keys, &w.roots, 0, &mut guard),
            Err(DatagramError::BadCertificate(_))
        ));
    }

    #[test]
    fn wrong_recipient_rejected() {
        let mut w = world();
        let d = SealedDatagram::seal(&w.a, &w.a.name, w.a_keys.public, b"m", 0, &mut w.rng);
        let mut guard = ReplayGuard::new(1_000_000);
        assert!(matches!(
            d.open(&w.b, &w.b_keys, &w.roots, 0, &mut guard),
            Err(DatagramError::WrongRecipient { .. })
        ));
    }

    #[test]
    fn untrusted_sender_rejected() {
        let w = world();
        let mut rng = DetRng::new(123);
        let mallory_keys = KeyPair::generate(&mut rng);
        let mname = Urn::server("evil.org", ["m"]).unwrap();
        let self_cert = Certificate::issue(
            mname.to_string(),
            mallory_keys.public,
            "ca.evil",
            &mallory_keys,
            u64::MAX,
            1,
            &mut rng,
        );
        let mallory = ChannelIdentity {
            name: mname,
            keys: mallory_keys,
            chain: vec![self_cert],
        };
        let d = SealedDatagram::seal(&mallory, &w.b.name, w.b_keys.public, b"m", 0, &mut rng);
        let mut guard = ReplayGuard::new(1_000_000);
        assert!(matches!(
            d.open(&w.b, &w.b_keys, &w.roots, 0, &mut guard),
            Err(DatagramError::BadCertificate(_))
        ));
    }

    #[test]
    fn guard_purges_expired_entries() {
        let mut guard = ReplayGuard::new(10);
        for i in 0..256u64 {
            guard.check(i, i, i).unwrap();
            guard.commit(i, i);
        }
        // Purge happens opportunistically; old entries within (latest -
        // window) are dropped.
        assert!(guard.len() < 256);
    }
}
