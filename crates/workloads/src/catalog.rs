//! Vendor price catalogs for the shopping scenario.
//!
//! The paper's introduction motivates agents with errands "from on-line
//! shopping to ... distributed scientific computation"; the shopping
//! example sends an agent around vendor servers comparing prices.
//! Catalog records are store records of the form
//! `item=<name> vendor=<vendor> price=<cents>`.

use ajanta_crypto::DetRng;

/// One price quote parsed back out of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Item name.
    pub item: String,
    /// Vendor tag.
    pub vendor: String,
    /// Price in cents.
    pub price: u64,
}

impl Quote {
    /// Parses a catalog record; `None` when the record is not a quote.
    pub fn parse(record: &[u8]) -> Option<Quote> {
        let text = std::str::from_utf8(record).ok()?;
        let mut item = None;
        let mut vendor = None;
        let mut price = None;
        for field in text.split_whitespace() {
            if let Some(v) = field.strip_prefix("item=") {
                item = Some(v.to_string());
            } else if let Some(v) = field.strip_prefix("vendor=") {
                vendor = Some(v.to_string());
            } else if let Some(v) = field.strip_prefix("price=") {
                price = v.parse().ok();
            }
        }
        Some(Quote {
            item: item?,
            vendor: vendor?,
            price: price?,
        })
    }
}

/// Item names every vendor stocks (so cross-vendor comparison always has
/// matches).
pub const ITEMS: [&str; 8] = [
    "modem56k",
    "zipdrive",
    "crt17in",
    "scsi-card",
    "ethernet-hub",
    "trackball",
    "mousepad",
    "ram-64mb",
];

/// Generates vendor `v`'s catalog: one quote per item with a
/// vendor-specific deterministic price, plus `extra` filler records.
pub fn vendor_catalog(vendor: &str, extra: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = DetRng::new(seed ^ hash_tag(vendor));
    let mut records = Vec::with_capacity(ITEMS.len() + extra);
    for item in ITEMS {
        let price = 1_000 + rng.below(9_000);
        records.push(format!("item={item} vendor={vendor} price={price}").into_bytes());
    }
    for i in 0..extra {
        records.push(
            format!("filler-{i:05} vendor={vendor} noise={}", rng.below(1 << 30)).into_bytes(),
        );
    }
    records
}

fn hash_tag(tag: &str) -> u64 {
    // FNV-1a, enough to decorrelate vendor seeds.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tag.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cheapest quote for `item` across raw scan output (newline-joined
/// records) — the client-side reference the agent's answer is checked
/// against.
pub fn best_quote(scan_output: &[u8], item: &str) -> Option<Quote> {
    scan_output
        .split(|&b| b == b'\n')
        .filter_map(Quote::parse)
        .filter(|q| q.item == item)
        .min_by_key(|q| q.price)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_are_deterministic_and_vendor_specific() {
        let a1 = vendor_catalog("acme", 5, 1);
        let a2 = vendor_catalog("acme", 5, 1);
        let b = vendor_catalog("bulk", 5, 1);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.len(), ITEMS.len() + 5);
    }

    #[test]
    fn quotes_parse_back() {
        let records = vendor_catalog("acme", 0, 7);
        for r in &records {
            let q = Quote::parse(r).expect("catalog rows are quotes");
            assert_eq!(q.vendor, "acme");
            assert!(ITEMS.contains(&q.item.as_str()));
            assert!((1_000..10_000).contains(&q.price));
        }
    }

    #[test]
    fn filler_rows_are_not_quotes() {
        let records = vendor_catalog("acme", 3, 7);
        assert!(Quote::parse(&records[ITEMS.len()]).is_none());
    }

    #[test]
    fn best_quote_finds_minimum() {
        let blob =
            b"item=x vendor=a price=500\nitem=x vendor=b price=300\nitem=y vendor=c price=100"
                .to_vec();
        let best = best_quote(&blob, "x").unwrap();
        assert_eq!(best.vendor, "b");
        assert_eq!(best.price, 300);
        assert!(best_quote(&blob, "zzz").is_none());
    }
}
