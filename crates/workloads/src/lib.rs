//! Deterministic workload generators and canonical agent programs for the
//! experiment harness.
//!
//! Everything here is a pure function of its seed, so every experiment
//! table in EXPERIMENTS.md regenerates exactly.
//!
//! * [`records`] — record-store populations with controlled selectivity
//!   (the information-retrieval scenario driving experiment X9).
//! * [`catalog`] — vendor price catalogs (the shopping scenario from the
//!   paper's introduction).
//! * [`agents`] — the canonical agent programs: collectors, shoppers,
//!   payload carriers, spinners. Benches, examples and tests all use
//!   these same builders, so measured agents are the demonstrated agents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod catalog;
pub mod records;

pub use agents::{collector_agent, noop_agent, payload_agent, shopper_agent, spin_agent};
pub use catalog::{vendor_catalog, Quote};
pub use records::{record_population, selector_for, RecordSpec};
