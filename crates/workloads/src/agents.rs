//! Canonical agent programs.
//!
//! Each builder returns a ready-to-launch [`AgentImage`]; the same
//! programs power the examples, the integration tests, and the benchmark
//! tables, so measurements describe the artifacts actually demonstrated.

use ajanta_naming::Urn;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_vm::{assemble, AgentImage, Value};

fn build(src: &str, globals: Vec<Value>, entry: &str) -> AgentImage {
    let module = assemble(src).unwrap_or_else(|e| panic!("workload agent fails to assemble: {e}"));
    let image = AgentImage {
        module,
        globals,
        entry: entry.into(),
    };
    image
        .validate()
        .unwrap_or_else(|e| panic!("workload agent image invalid: {e}"));
    image
}

/// An agent that immediately completes with 0 (admission-cost floor).
pub fn noop_agent() -> AgentImage {
    build(
        r#"
        module noop
        func run(arg: bytes) -> int
          push 0
          ret
        "#,
        vec![],
        "run",
    )
}

/// An agent that burns fuel forever (quota-enforcement probe).
pub fn spin_agent() -> AgentImage {
    build(
        r#"
        module spin
        func run(arg: bytes) -> int
        loop:
          jump loop
        "#,
        vec![],
        "run",
    )
}

/// An agent carrying `state_bytes` of mobile state along `itinerary`,
/// returning its hop count — the X10 transfer-cost probe and the X13f
/// fault-recovery tourist.
///
/// It migrates with `env.go_tour`, handing the runtime the *whole*
/// remaining itinerary: the head is the next stop and the tail rides as
/// fallbacks, so an unreachable stop is skipped by the reliable-transfer
/// layer instead of stranding the agent.
pub fn payload_agent(state_bytes: usize, itinerary: &Itinerary) -> AgentImage {
    let src = r#"
        module payload
        import env.go_tour (bytes, bytes) -> int
        import env.itin_tail (bytes) -> bytes
        global itin: bytes
        global cargo: bytes
        global hops: int
        data entry = "run"

        func run(arg: bytes) -> int
          locals full: bytes
          gload hops
          push 1
          add
          gstore hops
          gload itin
          blen
          jz done
          # Keep the full remaining plan for go_tour, but migrate with
          # only the tail: the head is where the next activation runs.
          gload itin
          store full
          gload itin
          hostcall env.itin_tail
          gstore itin
          load full
          pushd entry
          hostcall env.go_tour
          drop
          push 0
          ret
        done:
          gload hops
          ret
    "#;
    // Incompressible-ish deterministic cargo (varied bytes, not zeros).
    let cargo: Vec<u8> = (0..state_bytes).map(|i| (i * 131 % 251) as u8).collect();
    build(
        src,
        vec![
            Value::Bytes(itinerary.encode()),
            Value::Bytes(cargo),
            Value::Int(0),
        ],
        "run",
    )
}

/// The multi-hop collector (experiment X9's agent contender): at each
/// server it binds the well-known store, asks it to `scan` for the
/// selector, appends the matches to its carried state, and moves on;
/// from the last stop it returns everything collected.
///
/// `store` is the location-independent resource name each site registers
/// its replica under.
pub fn collector_agent(store: &Urn, selector: &[u8], itinerary: &Itinerary) -> AgentImage {
    let src = format!(
        r#"
        module collector
        import env.get_resource (bytes) -> int
        import env.invoke (int, bytes, bytes) -> bytes
        import env.args_b (bytes) -> bytes
        import env.res_bytes (bytes) -> bytes
        import env.go (bytes, bytes) -> int
        import env.itin_head (bytes) -> bytes
        import env.itin_tail (bytes) -> bytes
        global itin: bytes
        global acc: bytes
        global sel: bytes
        data store = "{store}"
        data mscan = "scan"
        data nl = "\n"
        data entry = "run"

        # The selector rides in a global: entry arguments are not carried
        # across migrations (the runtime passes the current server name).
        func run(arg: bytes) -> bytes
          locals h: int, m: bytes
          pushd store
          hostcall env.get_resource
          store h
          load h
          pushd mscan
          gload sel
          hostcall env.args_b
          hostcall env.invoke
          hostcall env.res_bytes
          store m
          load m
          blen
          jz after
          gload acc
          blen
          jz firstm
          gload acc
          pushd nl
          bconcat
          load m
          bconcat
          gstore acc
          jump after
        firstm:
          load m
          gstore acc
        after:
          gload itin
          blen
          jz done
          gload itin
          hostcall env.itin_head
          gload itin
          hostcall env.itin_tail
          gstore itin
          pushd entry
          hostcall env.go
          drop
          gload acc
          ret
        done:
          gload acc
          ret
    "#
    );
    build(
        &src,
        vec![
            Value::Bytes(itinerary.encode()),
            Value::Bytes(Vec::new()),
            Value::Bytes(selector.to_vec()),
        ],
        "run",
    )
}

/// The price-comparison shopper (the paper's motivating application): it
/// tours vendor servers, scans each catalog for `item=<item>`, parses the
/// price out of the quote *in agent code*, keeps the cheapest, and
/// returns the winning quote line.
pub fn shopper_agent(catalog: &Urn, item: &str, itinerary: &Itinerary) -> AgentImage {
    let src = format!(
        r#"
        module shopper
        import env.get_resource (bytes) -> int
        import env.invoke (int, bytes, bytes) -> bytes
        import env.args_b (bytes) -> bytes
        import env.res_bytes (bytes) -> bytes
        import env.go (bytes, bytes) -> int
        import env.itin_head (bytes) -> bytes
        import env.itin_tail (bytes) -> bytes
        global itin: bytes
        global best_price: int
        global best_line: bytes
        data catalog = "{catalog}"
        data mscan = "scan"
        data query = "item={item} "
        data price_key = "price="
        data entry = "run"

        func run(arg: bytes) -> bytes
          locals h: int, m: bytes, line: bytes, p: int
          pushd catalog
          hostcall env.get_resource
          store h
          load h
          pushd mscan
          pushd query
          hostcall env.args_b
          hostcall env.invoke
          hostcall env.res_bytes
          store m
          load m
          blen
          jz travel
          # take the first line of the scan result
          load m
          call first_line
          store line
          # parse the price
          load line
          call parse_price
          store p
          # keep the minimum (best_price == 0 means "none yet")
          gload best_price
          jz take
          load p
          gload best_price
          lt
          jz travel
        take:
          load p
          gstore best_price
          load line
          gstore best_line
        travel:
          gload itin
          blen
          jz done
          gload itin
          hostcall env.itin_head
          gload itin
          hostcall env.itin_tail
          gstore itin
          pushd entry
          hostcall env.go
          drop
          gload best_line
          ret
        done:
          gload best_line
          ret

        func first_line(m: bytes) -> bytes
          locals i: int, n: int
          load m
          blen
          store n
        scanloop:
          load i
          load n
          lt
          jz whole
          load m
          load i
          bindex
          push 10
          eq
          jz step
          load m
          push 0
          load i
          bslice
          ret
        step:
          load i
          push 1
          add
          store i
          jump scanloop
        whole:
          load m
          ret

        # finds "price=" in the line and parses the following digits
        func parse_price(line: bytes) -> int
          locals i: int, limit: int, j: int, ok: int, acc: int, c: int, n: int
          load line
          blen
          store n
          pushd price_key
          blen
          load n
          swap
          sub
          store limit
        outer:
          load i
          load limit
          le
          jz fail
          push 1
          store ok
          push 0
          store j
        inner:
          load j
          pushd price_key
          blen
          lt
          jz matched
          load line
          load i
          load j
          add
          bindex
          pushd price_key
          load j
          bindex
          ne
          jz stepj
          push 0
          store ok
          jump matched
        stepj:
          load j
          push 1
          add
          store j
          jump inner
        matched:
          load ok
          jz stepi
          # digits start at i + len("price=")
          load i
          pushd price_key
          blen
          add
          store i
          push 0
          store acc
        digits:
          load i
          load n
          lt
          jz havenum
          load line
          load i
          bindex
          store c
          load c
          push 48
          ge
          jz havenum
          load c
          push 57
          le
          jz havenum
          load acc
          push 10
          mul
          load c
          add
          push 48
          sub
          store acc
          load i
          push 1
          add
          store i
          jump digits
        havenum:
          load acc
          ret
        stepi:
          load i
          push 1
          add
          store i
          jump outer
        fail:
          push 0
          ret
    "#
    );
    build(
        &src,
        vec![
            Value::Bytes(itinerary.encode()),
            Value::Int(0),
            Value::Bytes(Vec::new()),
        ],
        "run",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_vm::verify;

    fn server(n: &str) -> Urn {
        Urn::server("x.org", [n]).unwrap()
    }

    #[test]
    fn all_builders_produce_verifiable_images() {
        let it = Itinerary::new([server("a"), server("b")]);
        let store = Urn::resource("stores.org", ["db"]).unwrap();
        for img in [
            noop_agent(),
            spin_agent(),
            payload_agent(1024, &it),
            collector_agent(&store, b"HOT", &it),
            shopper_agent(&store, "modem56k", &it),
        ] {
            verify(img.module.clone()).expect("workload agent verifies");
            img.validate().expect("image consistent");
        }
    }

    #[test]
    fn payload_agent_carries_requested_state() {
        let it = Itinerary::new([server("a")]);
        let img = payload_agent(10_000, &it);
        match &img.globals[1] {
            Value::Bytes(b) => assert_eq!(b.len(), 10_000),
            other => panic!("cargo global wrong: {other:?}"),
        }
        // Encoded size scales with the cargo.
        let small = payload_agent(0, &it);
        assert!(img.encoded_len() > small.encoded_len() + 9_000);
    }

    #[test]
    fn shopper_parse_price_works_in_vm() {
        // Drive the parse_price helper directly.
        use ajanta_vm::{ExecOutcome, Interpreter, Limits, NoHost};
        let it = Itinerary::default();
        let store = Urn::resource("stores.org", ["db"]).unwrap();
        let img = shopper_agent(&store, "modem56k", &it);
        let vm = std::sync::Arc::new(verify(img.module).unwrap());
        let mut interp = Interpreter::new(std::sync::Arc::clone(&vm), Limits::default());
        let out = interp.run(
            "parse_price",
            vec![Value::str("item=modem56k vendor=acme price=4321")],
            &mut NoHost,
        );
        assert_eq!(out, ExecOutcome::Finished(Value::Int(4321)));
        // No price → 0.
        let mut interp = Interpreter::new(std::sync::Arc::clone(&vm), Limits::default());
        let out = interp.run(
            "parse_price",
            vec![Value::str("no price here")],
            &mut NoHost,
        );
        assert_eq!(out, ExecOutcome::Finished(Value::Int(0)));
    }

    #[test]
    fn shopper_first_line_works_in_vm() {
        use ajanta_vm::{ExecOutcome, Interpreter, Limits, NoHost};
        let it = Itinerary::default();
        let store = Urn::resource("stores.org", ["db"]).unwrap();
        let img = shopper_agent(&store, "modem56k", &it);
        let vm = std::sync::Arc::new(verify(img.module).unwrap());
        let mut interp = Interpreter::new(std::sync::Arc::clone(&vm), Limits::default());
        let out = interp.run("first_line", vec![Value::str("line1\nline2")], &mut NoHost);
        assert_eq!(out, ExecOutcome::Finished(Value::str("line1")));
        let mut interp = Interpreter::new(std::sync::Arc::clone(&vm), Limits::default());
        let out = interp.run("first_line", vec![Value::str("only")], &mut NoHost);
        assert_eq!(out, ExecOutcome::Finished(Value::str("only")));
    }
}
