//! Property-based tests for the cryptographic substrate.

use ajanta_crypto::modmath::{add_mod, inv_mod_prime, mul_mod, pow_mod, sub_mod};
use ajanta_crypto::sig::{self, KeyPair, Signature, P, Q};
use ajanta_crypto::{sha256, DetRng, HmacSha256, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing over arbitrary chunkings equals one-shot.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                 cuts in proptest::collection::vec(any::<prop::sample::Index>(), 0..8)) {
        let oneshot = sha256(&data);
        let mut points: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        let mut h = Sha256::new();
        for w in points.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Different inputs essentially never collide (sanity, not proof).
    #[test]
    fn sha256_distinguishes_neighbors(data in proptest::collection::vec(any::<u8>(), 1..512),
                                      idx in any::<prop::sample::Index>()) {
        let i = idx.index(data.len());
        let mut other = data.clone();
        other[i] ^= 0x01;
        prop_assert_ne!(sha256(&data), sha256(&other));
    }

    /// HMAC is key-separated and message-sensitive.
    #[test]
    fn hmac_key_and_message_sensitivity(key in proptest::collection::vec(any::<u8>(), 0..96),
                                        msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));

        let mut key2 = key.clone();
        key2.push(0xAB);
        prop_assert!(!HmacSha256::verify(&key2, &msg, &tag));

        let mut msg2 = msg.clone();
        msg2.push(0xCD);
        prop_assert!(!HmacSha256::verify(&key, &msg2, &tag));
    }

    /// Field laws mod P: commutativity, associativity, inverses.
    #[test]
    fn modmath_field_laws(a in 0..P, b in 0..P, c in 0..P) {
        prop_assert_eq!(add_mod(a, b, P), add_mod(b, a, P));
        prop_assert_eq!(mul_mod(a, b, P), mul_mod(b, a, P));
        prop_assert_eq!(
            mul_mod(mul_mod(a, b, P), c, P),
            mul_mod(a, mul_mod(b, c, P), P)
        );
        prop_assert_eq!(
            mul_mod(a, add_mod(b, c, P), P),
            add_mod(mul_mod(a, b, P), mul_mod(a, c, P), P)
        );
        prop_assert_eq!(sub_mod(add_mod(a, b, P), b, P), a);
        if a != 0 {
            let inv = inv_mod_prime(a, P).unwrap();
            prop_assert_eq!(mul_mod(a, inv, P), 1);
        }
    }

    /// Exponent laws: g^(a+b) == g^a * g^b (mod p), exponents mod q.
    #[test]
    fn modmath_exponent_laws(a in 0..Q, b in 0..Q) {
        let lhs = pow_mod(sig::G, add_mod(a, b, Q), P);
        let rhs = mul_mod(pow_mod(sig::G, a, P), pow_mod(sig::G, b, P), P);
        prop_assert_eq!(lhs, rhs);
    }

    /// Every generated signature verifies; any single-field perturbation
    /// fails.
    #[test]
    fn signature_soundness(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..256),
                           de in 1..Q, ds in 1..Q) {
        let mut rng = DetRng::new(seed);
        let kp = KeyPair::generate(&mut rng);
        let s = kp.sign(&msg, &mut rng);
        prop_assert!(sig::verify(&kp.public, &msg, &s).is_ok());

        let bad_e = Signature { e: (s.e + de) % Q, s: s.s };
        let bad_s = Signature { e: s.e, s: (s.s + ds) % Q };
        prop_assert!(sig::verify(&kp.public, &msg, &bad_e).is_err());
        prop_assert!(sig::verify(&kp.public, &msg, &bad_s).is_err());
    }

    /// A signature never verifies for a different message (append a byte).
    #[test]
    fn signature_binds_message(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..256),
                               extra in any::<u8>()) {
        let mut rng = DetRng::new(seed);
        let kp = KeyPair::generate(&mut rng);
        let s = kp.sign(&msg, &mut rng);
        let mut msg2 = msg.clone();
        msg2.push(extra);
        prop_assert!(sig::verify(&kp.public, &msg2, &s).is_err());
    }

    /// DetRng::below is always within bounds.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1..u64::MAX) {
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
