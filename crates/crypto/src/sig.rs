//! Schnorr signatures over a safe-prime group (simulation-grade).
//!
//! Parameters: `p = 2q + 1` a 62-bit safe prime, `g = 4` generating the
//! order-`q` subgroup of `Z_p^*`. A unit test re-proves primality of both
//! constants with the deterministic Miller–Rabin in [`crate::modmath`].
//!
//! Scheme (hash = SHA-256):
//!
//! ```text
//! keygen:  x ←$ [1, q),  y = g^x mod p
//! sign:    k ←$ [1, q),  r = g^k mod p,  e = H(domain ‖ r ‖ m) mod q,
//!          s = (k + x·e) mod q,          signature = (e, s)
//! verify:  r' = g^s · y^(q−e) mod p,     accept iff e == H(domain ‖ r' ‖ m) mod q
//! ```
//!
//! The 62-bit group is **not secure** (see the crate-level caveat); it
//! exists so that credentials and channel handshakes carry real
//! verify-or-reject semantics against the simulated adversaries, with the
//! honest-path behaviour (and relative costs) of public-key signatures.

use serde::{Deserialize, Serialize};

use crate::modmath::{add_mod, mul_mod, pow_mod};
use crate::rng::DetRng;
use crate::sha256::Sha256;

/// The 62-bit safe prime modulus `p`.
pub const P: u64 = 0x3fff_ffff_ffff_d6bb;
/// The subgroup order `q = (p − 1) / 2`, also prime.
pub const Q: u64 = 0x1fff_ffff_ffff_eb5d;
/// Generator of the order-`q` subgroup (`g = 2² mod p`).
pub const G: u64 = 4;

/// Domain-separation prefix folded into every signature hash, so signatures
/// from this module can never be confused with HMAC tags or other hashes.
const DOMAIN: &[u8] = b"ajanta.sig.v1";

/// A public verification key (a group element `y = g^x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PublicKey(pub u64);

/// A secret signing key (an exponent in `[1, q)`).
///
/// Deliberately not `Copy`, does not implement `Display`, and debug-prints
/// redacted, to make accidental leakage in logs harder.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(u64);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Challenge hash reduced mod `q`.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

/// Errors from signature operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The signature did not verify against the key and message.
    BadSignature,
    /// The public key is not a valid group element.
    BadKey,
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::BadSignature => f.write_str("signature verification failed"),
            SignatureError::BadKey => f.write_str("public key is not a valid group element"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A signing/verification key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    /// The public half, freely shareable.
    pub public: PublicKey,
    secret: SecretKey,
}

impl KeyPair {
    /// Generates a key pair from the given RNG.
    pub fn generate(rng: &mut DetRng) -> Self {
        let x = rng.range_inclusive(1, Q - 1);
        let y = pow_mod(G, x, P);
        KeyPair {
            public: PublicKey(y),
            secret: SecretKey(x),
        }
    }

    /// Borrow the secret key for signing.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// Signs `msg` with a nonce drawn from `rng`.
    pub fn sign(&self, msg: &[u8], rng: &mut DetRng) -> Signature {
        sign(&self.secret, msg, rng)
    }

    /// Diffie–Hellman with the static secret: `base^x mod p`. Used by the
    /// sealed-datagram scheme in `ajanta-net`, where a sender encrypts to
    /// this key pair's public half.
    pub fn raise(&self, base: u64) -> u64 {
        pow_mod(base, self.secret.0, P)
    }
}

/// Checks that `y` lies in the order-`q` subgroup (and is not the
/// identity), i.e. it is a possible public key.
pub fn valid_public_key(key: &PublicKey) -> bool {
    let y = key.0;
    y > 1 && y < P && pow_mod(y, Q, P) == 1
}

/// Hash-to-scalar: `H(DOMAIN ‖ r ‖ m) mod q`.
fn challenge(r: u64, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(DOMAIN);
    h.update(r.to_be_bytes());
    h.update(msg);
    h.finalize().prefix_u64() % Q
}

/// Signs `msg` under `sk`.
pub fn sign(sk: &SecretKey, msg: &[u8], rng: &mut DetRng) -> Signature {
    loop {
        let k = rng.range_inclusive(1, Q - 1);
        let r = pow_mod(G, k, P);
        let e = challenge(r, msg);
        if e == 0 {
            // Degenerate challenge would leak k; resample (astronomically rare).
            continue;
        }
        let s = add_mod(k, mul_mod(sk.0, e, Q), Q);
        return Signature { e, s };
    }
}

/// Verifies `sig` over `msg` under `pk`.
pub fn verify(pk: &PublicKey, msg: &[u8], sig: &Signature) -> Result<(), SignatureError> {
    if !valid_public_key(pk) {
        return Err(SignatureError::BadKey);
    }
    if sig.e == 0 || sig.e >= Q || sig.s >= Q {
        return Err(SignatureError::BadSignature);
    }
    // r' = g^s * y^(q - e)  (y has order q, so y^(q-e) = y^(-e))
    let gs = pow_mod(G, sig.s, P);
    let y_ne = pow_mod(pk.0, Q - sig.e, P);
    let r = mul_mod(gs, y_ne, P);
    if challenge(r, msg) == sig.e {
        Ok(())
    } else {
        Err(SignatureError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modmath::is_prime;

    fn pair(seed: u64) -> (KeyPair, DetRng) {
        let mut rng = DetRng::new(seed);
        let kp = KeyPair::generate(&mut rng);
        (kp, rng)
    }

    /// The hardcoded group parameters really are a safe-prime group.
    #[test]
    fn group_parameters_are_sound() {
        assert!(is_prime(P), "p must be prime");
        assert!(is_prime(Q), "q must be prime");
        assert_eq!(P, 2 * Q + 1, "p must be a safe prime 2q+1");
        assert_eq!(pow_mod(G, Q, P), 1, "g must have order q");
        assert_ne!(G, 1);
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, mut rng) = pair(100);
        for msg in [b"".as_slice(), b"a", b"agent credentials", &[0u8; 1000]] {
            let sig = kp.sign(msg, &mut rng);
            verify(&kp.public, msg, &sig).unwrap();
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let (kp, mut rng) = pair(101);
        let sig = kp.sign(b"original", &mut rng);
        assert_eq!(
            verify(&kp.public, b"tampered", &sig),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let (kp1, mut rng) = pair(102);
        let kp2 = KeyPair::generate(&mut rng);
        let sig = kp1.sign(b"msg", &mut rng);
        assert_eq!(
            verify(&kp2.public, b"msg", &sig),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn perturbed_signature_rejected() {
        let (kp, mut rng) = pair(103);
        let msg = b"perturbation test";
        let sig = kp.sign(msg, &mut rng);
        for bit in 0..62 {
            let bad_e = Signature {
                e: sig.e ^ (1 << bit),
                s: sig.s,
            };
            let bad_s = Signature {
                e: sig.e,
                s: sig.s ^ (1 << bit),
            };
            assert!(
                verify(&kp.public, msg, &bad_e).is_err(),
                "flipped e bit {bit}"
            );
            assert!(
                verify(&kp.public, msg, &bad_s).is_err(),
                "flipped s bit {bit}"
            );
        }
    }

    #[test]
    fn out_of_range_components_rejected() {
        let (kp, mut rng) = pair(104);
        let sig = kp.sign(b"m", &mut rng);
        for bad in [
            Signature { e: 0, s: sig.s },
            Signature { e: Q, s: sig.s },
            Signature { e: sig.e, s: Q },
        ] {
            assert_eq!(
                verify(&kp.public, b"m", &bad),
                Err(SignatureError::BadSignature)
            );
        }
    }

    #[test]
    fn invalid_public_keys_rejected() {
        let (kp, mut rng) = pair(105);
        let sig = kp.sign(b"m", &mut rng);
        for y in [0u64, 1, P, P + 5] {
            assert_eq!(
                verify(&PublicKey(y), b"m", &sig),
                Err(SignatureError::BadKey),
                "y={y}"
            );
        }
        // An element of the full group that is NOT in the order-q subgroup:
        // any quadratic non-residue, e.g. g' = 2 (since 2^q mod p != 1 for
        // this group) — verify that validity check catches it.
        assert_ne!(pow_mod(2, Q, P), 1, "2 must be a non-residue for this test");
        assert_eq!(
            verify(&PublicKey(2), b"m", &sig),
            Err(SignatureError::BadKey)
        );
    }

    #[test]
    fn signatures_are_randomized() {
        let (kp, mut rng) = pair(106);
        let s1 = kp.sign(b"m", &mut rng);
        let s2 = kp.sign(b"m", &mut rng);
        assert_ne!(s1, s2, "distinct nonces must give distinct signatures");
        verify(&kp.public, b"m", &s1).unwrap();
        verify(&kp.public, b"m", &s2).unwrap();
    }

    #[test]
    fn keygen_is_deterministic_per_seed() {
        let (kp1, _) = pair(200);
        let (kp2, _) = pair(200);
        let (kp3, _) = pair(201);
        assert_eq!(kp1.public, kp2.public);
        assert_ne!(kp1.public, kp3.public);
    }

    #[test]
    fn public_keys_are_valid_group_elements() {
        let mut rng = DetRng::new(300);
        for _ in 0..20 {
            let kp = KeyPair::generate(&mut rng);
            assert!(valid_public_key(&kp.public));
        }
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let (kp, _) = pair(400);
        assert_eq!(format!("{:?}", kp.secret()), "SecretKey(<redacted>)");
    }
}
