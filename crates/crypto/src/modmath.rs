//! Modular arithmetic over 64-bit moduli, supporting the signature group.
//!
//! Everything here is deterministic and allocation-free. The Miller–Rabin
//! test uses a base set proven deterministic for all `n < 3.3 × 10^24`,
//! so the unit tests can *prove* the hardcoded group parameters prime.

/// `(a + b) mod m`, assuming `a, b < m`.
#[inline]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    let (s, carry) = a.overflowing_add(b);
    if carry || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// `(a - b) mod m`, assuming `a, b < m`.
#[inline]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a - b
    } else {
        a + (m - b)
    }
}

/// `(a * b) mod m` via 128-bit widening.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo prime `p` via Fermat's little theorem.
/// Returns `None` when `a ≡ 0 (mod p)`.
pub fn inv_mod_prime(a: u64, p: u64) -> Option<u64> {
    let a = a % p;
    if a == 0 {
        return None;
    }
    Some(pow_mod(a, p - 2, p))
}

/// Deterministic Miller–Rabin for 64-bit integers.
///
/// The base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` is known to
/// be deterministic for all `n < 3.317 × 10^24`, which covers `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_wraparound() {
        let m = u64::MAX - 58; // arbitrary large modulus
        assert_eq!(add_mod(m - 1, m - 1, m), m - 2);
        assert_eq!(add_mod(0, 0, m), 0);
        assert_eq!(sub_mod(0, m - 1, m), 1);
        assert_eq!(sub_mod(5, 5, m), 0);
    }

    #[test]
    fn mul_mod_matches_naive_small() {
        for a in 0..40u64 {
            for b in 0..40u64 {
                assert_eq!(mul_mod(a, b, 37), (a * b) % 37);
            }
        }
    }

    #[test]
    fn mul_mod_large_operands() {
        let m = (1u64 << 62) - 57;
        let a = m - 1;
        // (m-1)^2 mod m == 1
        assert_eq!(mul_mod(a, a, m), 1 % m);
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(5, 0, 13), 1);
        assert_eq!(pow_mod(0, 5, 13), 0);
        assert_eq!(pow_mod(7, 1, 13), 7);
        assert_eq!(pow_mod(123, 456, 1), 0);
    }

    #[test]
    fn fermat_holds_for_primes() {
        for p in [3u64, 5, 97, 1_000_000_007] {
            for a in [2u64, 3, 10, 123_456] {
                if a % p != 0 {
                    assert_eq!(pow_mod(a, p - 1, p), 1, "a={a} p={p}");
                }
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        let p = 1_000_000_007u64;
        for a in [1u64, 2, 3, 999, 123_456_789] {
            let inv = inv_mod_prime(a, p).unwrap();
            assert_eq!(mul_mod(a, inv, p), 1);
        }
        assert_eq!(inv_mod_prime(0, p), None);
        assert_eq!(inv_mod_prime(p, p), None); // p ≡ 0 mod p
    }

    #[test]
    fn primality_known_values() {
        let primes = [2u64, 3, 5, 7, 61, 97, 2_147_483_647, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 561, 1105, 2_147_483_649, 1_000_000_005];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn primality_strong_pseudoprimes() {
        // Strong pseudoprimes to base 2 must still be rejected.
        for n in [2047u64, 3277, 4033, 4681, 8321, 3_215_031_751] {
            assert!(!is_prime(n), "{n} is a base-2 pseudoprime, not a prime");
        }
    }

    #[test]
    fn primality_exhaustive_small() {
        // Cross-check against trial division for n < 2000.
        fn trial(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for n in 0..2000u64 {
            assert_eq!(is_prime(n), trial(n), "n={n}");
        }
    }
}
