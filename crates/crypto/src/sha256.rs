//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! Supports both one-shot hashing ([`sha256`]) and incremental hashing
//! ([`Sha256`]), which the secure channel uses to MAC streamed frames
//! without buffering whole messages.

use serde::{Deserialize, Serialize};

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Hex rendering, lowercase, 64 characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// The first 8 bytes interpreted as a big-endian integer — handy for
    /// deriving group-element exponents from hashes.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice is 8 bytes"))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", &self.to_hex()[..16])
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// FIPS 180-4 round constants: the first 32 bits of the fractional parts of
/// the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: fractional parts of the square roots of the first
/// eight primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far, for the length suffix.
    len: u64,
    /// Partial block not yet compressed.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        let mut data = data.as_ref();
        self.len = self.len.wrapping_add(data.len() as u64);

        // Fill a partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Nothing left for the fast path; crucially, do NOT fall
                // through to the remainder stash, which would clobber the
                // partial block we just extended.
                return self;
            }
        }

        // Whole blocks straight from the input.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress(
                &mut self.state,
                block.try_into().expect("chunk is 64 bytes"),
            );
        }

        // Stash the tail.
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
        self
    }

    /// Finishes and returns the digest. The hasher is consumed; clone it
    /// first for running digests.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update([0x80u8]);
        while self.buf_len != 56 {
            self.update([0u8]);
        }
        // Manual final block write: appending the length via update would
        // corrupt `len`, so compress directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

/// One-shot convenience wrapper.
pub fn sha256(data: impl AsRef<[u8]>) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / well-known test vectors.
    #[test]
    fn fips_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(sha256(input).to_hex(), expected);
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 256) as u8).collect();
        let oneshot = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog, twice around";
        let mut h = Sha256::new();
        for b in data {
            h.update([*b]);
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn digest_hex_and_prefix() {
        let d = sha256(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(
            d.prefix_u64(),
            u64::from_be_bytes(d.0[..8].try_into().unwrap())
        );
    }

    #[test]
    fn clone_gives_running_digest() {
        let mut h = Sha256::new();
        h.update(b"hello ");
        let mid = h.clone().finalize();
        h.update(b"world");
        let full = h.finalize();
        assert_eq!(mid, sha256(b"hello "));
        assert_eq!(full, sha256(b"hello world"));
        assert_ne!(mid, full);
    }

    #[test]
    fn lengths_spanning_padding_edge() {
        // Hash inputs of every length 0..=130 and confirm incremental(1-byte
        // feeds) == oneshot. Exercises the 55/56/63/64 padding edges.
        for n in 0..=130usize {
            let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let mut h = Sha256::new();
            for b in &data {
                h.update([*b]);
            }
            assert_eq!(h.finalize(), sha256(&data), "len {n}");
        }
    }
}
