//! Canonical wire encodings for keys, signatures, digests, certificates.

use ajanta_wire::{Decoder, Encoder, Wire, WireError};

use crate::cert::Certificate;
use crate::sha256::Digest;
use crate::sig::{PublicKey, Signature};

impl Wire for PublicKey {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(PublicKey(d.get_varint()?))
    }
}

impl Wire for Signature {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.e);
        e.put_varint(self.s);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Signature {
            e: d.get_varint()?,
            s: d.get_varint()?,
        })
    }
}

impl Wire for Digest {
    fn encode(&self, e: &mut Encoder) {
        e.put_raw(&self.0);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let raw = d.get_raw(32)?;
        Ok(Digest(raw.try_into().expect("get_raw returns 32 bytes")))
    }
}

impl Wire for Certificate {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.subject);
        self.subject_key.encode(e);
        e.put_str(&self.issuer);
        e.put_varint(self.not_after);
        e.put_varint(self.serial);
        self.signature.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Certificate {
            subject: d.get_str()?,
            subject_key: PublicKey::decode(d)?,
            issuer: d.get_str()?,
            not_after: d.get_varint()?,
            serial: d.get_varint()?,
            signature: Signature::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::sha256::sha256;
    use crate::sig::KeyPair;

    #[test]
    fn key_and_signature_roundtrip() {
        let mut rng = DetRng::new(1);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg", &mut rng);
        assert_eq!(
            PublicKey::from_bytes(&kp.public.to_bytes()).unwrap(),
            kp.public
        );
        assert_eq!(Signature::from_bytes(&sig.to_bytes()).unwrap(), sig);
    }

    #[test]
    fn digest_roundtrip_is_fixed_width() {
        let d = sha256(b"x");
        let bytes = d.to_bytes();
        assert_eq!(bytes.len(), 32);
        assert_eq!(Digest::from_bytes(&bytes).unwrap(), d);
        assert!(Digest::from_bytes(&bytes[..31]).is_err());
    }

    #[test]
    fn certificate_roundtrip() {
        let mut rng = DetRng::new(2);
        let ca = KeyPair::generate(&mut rng);
        let subj = KeyPair::generate(&mut rng);
        let cert = Certificate::issue("alice", subj.public, "ca", &ca, 1000, 7, &mut rng);
        let back = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(back, cert);
        // The decoded certificate still verifies.
        back.verify(&ca.public, 500).unwrap();
    }

    #[test]
    fn decode_garbage_never_panics() {
        for len in 0..64 {
            let bytes = vec![0xA5u8; len];
            let _ = PublicKey::from_bytes(&bytes);
            let _ = Signature::from_bytes(&bytes);
            let _ = Digest::from_bytes(&bytes);
            let _ = Certificate::from_bytes(&bytes);
        }
    }
}
