//! HMAC-SHA256 (RFC 2104), the integrity primitive for secure channels.
//!
//! The paper's requirements list (Section 2) demands *"privacy and
//! integrity of communication"*; `ajanta-net` frames every message with an
//! HMAC tag computed here, which is what turns the simulated active
//! attacker's tampering and forgery into *detected* events.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer-pad key block, retained until finalization.
    opad: [u8; BLOCK],
}

impl HmacSha256 {
    /// Starts a MAC with `key` (any length; long keys are pre-hashed per
    /// the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut kblock = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha256::sha256(key);
            kblock[..32].copy_from_slice(&d.0);
        } else {
            kblock[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = kblock[i] ^ 0x36;
            opad[i] = kblock[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(ipad);
        HmacSha256 { inner, opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(self.opad);
        outer.update(inner_digest.0);
        outer.finalize()
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8], msg: &[u8]) -> Digest {
        let mut h = HmacSha256::new(key);
        h.update(msg);
        h.finalize()
    }

    /// Constant-time-ish tag comparison. (Timing side channels are out of
    /// scope for the simulation, but the non-short-circuiting comparison
    /// documents intent and costs nothing.)
    pub fn verify(key: &[u8], msg: &[u8], tag: &Digest) -> bool {
        let computed = Self::mac(key, msg);
        let mut diff = 0u8;
        for (a, b) in computed.0.iter().zip(tag.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 4231 test cases 1, 2, 3, 6 (short key, short data; "Jefe"; long
    /// data; oversized key).
    #[test]
    fn rfc4231_vectors() {
        let cases = [
            (
                hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b"),
                b"Hi There".to_vec(),
                "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            ),
            (
                b"Jefe".to_vec(),
                b"what do ya want for nothing?".to_vec(),
                "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            ),
            (
                hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
                vec![0xdd; 50],
                "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            ),
            (
                vec![0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
                "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            ),
        ];
        for (key, msg, expected) in cases {
            assert_eq!(HmacSha256::mac(&key, &msg).to_hex(), expected);
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"channel-key";
        let msg = b"frame 0: agent transfer, 1234 bytes of state";
        let oneshot = HmacSha256::mac(key, msg);
        let mut h = HmacSha256::new(key);
        for chunk in msg.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn verify_accepts_good_and_rejects_bad() {
        let key = b"k";
        let msg = b"m";
        let tag = HmacSha256::mac(key, msg);
        assert!(HmacSha256::verify(key, msg, &tag));

        let mut bad = tag;
        bad.0[0] ^= 1;
        assert!(!HmacSha256::verify(key, msg, &bad));
        assert!(!HmacSha256::verify(b"other-key", msg, &tag));
        assert!(!HmacSha256::verify(key, b"other-msg", &tag));
    }

    #[test]
    fn every_message_bit_flip_changes_tag() {
        let key = b"integrity";
        let msg = b"short frame";
        let tag = HmacSha256::mac(key, msg);
        for i in 0..msg.len() {
            for bit in 0..8 {
                let mut m = msg.to_vec();
                m[i] ^= 1 << bit;
                assert_ne!(HmacSha256::mac(key, &m), tag, "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        let msg = b"same message";
        let t1 = HmacSha256::mac(b"key-1", msg);
        let t2 = HmacSha256::mac(b"key-2", msg);
        assert_ne!(t1, t2);
    }
}
