//! Cryptographic substrate for the Ajanta reproduction.
//!
//! The paper (Section 5.2) deliberately treats *"any credential-related
//! functions and protocols at an abstract level"*; what the system needs
//! from cryptography is **functional**: tamper-evidence, signer identity,
//! keyed integrity for network frames, and public-key certificates binding
//! names to keys. This crate supplies exactly those functions, built from
//! scratch:
//!
//! * [`sha256`] — a complete FIPS 180-4 SHA-256 (real, test-vectored).
//! * [`hmac`] — HMAC-SHA256 per RFC 2104 (real, RFC 4231 vectors).
//! * [`sig`] — Schnorr signatures over a 62-bit safe-prime group.
//! * [`cert`] — public-key certificates and chains with expiry.
//! * [`rng`] — a deterministic seedable generator for reproducible
//!   experiments.
//!
//! # Security caveat (simulation-grade signatures)
//!
//! The hash and MAC are genuine. The **signature group is far too small to
//! be secure** (62-bit modulus; discrete logs in such a group are weekend
//! work). It is used here because the reproduction needs the *behaviour* of
//! signatures — unforgeability against the simulated adversaries in
//! `ajanta-net`, key/certificate plumbing, and realistic relative costs —
//! not protection of real assets. Do not reuse outside the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod hmac;
pub mod modmath;
pub mod rng;
pub mod sha256;
pub mod sig;
mod wire_impls;

pub use cert::{Certificate, CertificateError, RootOfTrust};
pub use hmac::HmacSha256;
pub use rng::DetRng;
pub use sha256::{sha256, Digest, Sha256};
pub use sig::{KeyPair, PublicKey, SecretKey, Signature, SignatureError};
