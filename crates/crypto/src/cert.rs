//! Public-key certificates and chains.
//!
//! The paper's credentials *"include the owner's public key certificate"*
//! (Section 5.2) and motivate expiry *"so that stolen credentials cannot be
//! misused indefinitely"*. A [`Certificate`] binds a subject name to a
//! [`PublicKey`] under an issuer's signature, with an expiration instant in
//! **virtual time** (the simulated clock from `ajanta-net`); a
//! [`RootOfTrust`] validates chains bottom-up to a trusted issuer.
//!
//! Subjects and issuers are plain strings here (canonically, rendered
//! `ajn:` URNs) to keep this crate independent of `ajanta-naming`.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::sha256::Sha256;
use crate::sig::{self, KeyPair, PublicKey, Signature};

/// A signed binding of a subject name to a public key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Name of the key holder (canonically a rendered URN).
    pub subject: String,
    /// The key being certified.
    pub subject_key: PublicKey,
    /// Name of the signing authority.
    pub issuer: String,
    /// Expiry instant in virtual nanoseconds; the certificate is invalid at
    /// any `now > not_after`.
    pub not_after: u64,
    /// Issuer-assigned serial number.
    pub serial: u64,
    /// Issuer signature over the canonical encoding of the fields above.
    pub signature: Signature,
}

/// Why certificate validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// Signature did not verify under the issuer key.
    BadSignature,
    /// `now` is past `not_after`.
    Expired {
        /// The expiry instant carried by the certificate.
        not_after: u64,
        /// The validation instant.
        now: u64,
    },
    /// No trusted key is known for this issuer.
    UnknownIssuer(String),
    /// A chain link's issuer does not match the next certificate's subject.
    BrokenChain {
        /// Issuer expected by the lower certificate.
        expected_issuer: String,
        /// Subject actually found on the next certificate.
        found_subject: String,
    },
    /// An empty chain was presented.
    EmptyChain,
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::BadSignature => f.write_str("certificate signature invalid"),
            CertificateError::Expired { not_after, now } => {
                write!(f, "certificate expired at {not_after}, now {now}")
            }
            CertificateError::UnknownIssuer(i) => write!(f, "issuer not trusted: {i}"),
            CertificateError::BrokenChain {
                expected_issuer,
                found_subject,
            } => write!(
                f,
                "chain broken: expected issuer {expected_issuer}, next subject {found_subject}"
            ),
            CertificateError::EmptyChain => f.write_str("empty certificate chain"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// Canonical byte encoding signed by the issuer. Length-prefixed fields
/// prevent ambiguity (e.g. subject="ab", issuer="c" vs subject="a",
/// issuer="bc").
fn to_be_signed(
    subject: &str,
    key: &PublicKey,
    issuer: &str,
    not_after: u64,
    serial: u64,
) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"ajanta.cert.v1");
    h.update((subject.len() as u64).to_be_bytes());
    h.update(subject.as_bytes());
    h.update(key.0.to_be_bytes());
    h.update((issuer.len() as u64).to_be_bytes());
    h.update(issuer.as_bytes());
    h.update(not_after.to_be_bytes());
    h.update(serial.to_be_bytes());
    h.finalize().0
}

impl Certificate {
    /// Issues a certificate: `issuer_keys` signs the binding of
    /// `subject` to `subject_key`.
    pub fn issue(
        subject: impl Into<String>,
        subject_key: PublicKey,
        issuer: impl Into<String>,
        issuer_keys: &KeyPair,
        not_after: u64,
        serial: u64,
        rng: &mut DetRng,
    ) -> Certificate {
        let subject = subject.into();
        let issuer = issuer.into();
        let tbs = to_be_signed(&subject, &subject_key, &issuer, not_after, serial);
        let signature = issuer_keys.sign(&tbs, rng);
        Certificate {
            subject,
            subject_key,
            issuer,
            not_after,
            serial,
            signature,
        }
    }

    /// Verifies this single certificate against a known issuer key at
    /// virtual instant `now`.
    pub fn verify(&self, issuer_key: &PublicKey, now: u64) -> Result<(), CertificateError> {
        if now > self.not_after {
            return Err(CertificateError::Expired {
                not_after: self.not_after,
                now,
            });
        }
        let tbs = to_be_signed(
            &self.subject,
            &self.subject_key,
            &self.issuer,
            self.not_after,
            self.serial,
        );
        sig::verify(issuer_key, &tbs, &self.signature).map_err(|_| CertificateError::BadSignature)
    }
}

/// The verifier's set of trusted issuers.
///
/// The paper's design explicitly avoids *"a ubiquitous or central authority
/// for security policy enforcement"* (Section 5.2, citing Bull et al.):
/// each server configures its own roots, so different servers may trust
/// different federations.
#[derive(Debug, Clone, Default)]
pub struct RootOfTrust {
    trusted: std::collections::BTreeMap<String, PublicKey>,
}

impl RootOfTrust {
    /// An empty trust store (trusts nobody).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a trusted issuer key.
    pub fn trust(&mut self, issuer: impl Into<String>, key: PublicKey) {
        self.trusted.insert(issuer.into(), key);
    }

    /// Removes trust in an issuer. Returns whether it was present.
    pub fn revoke_trust(&mut self, issuer: &str) -> bool {
        self.trusted.remove(issuer).is_some()
    }

    /// Looks up a trusted issuer key.
    pub fn key_of(&self, issuer: &str) -> Option<&PublicKey> {
        self.trusted.get(issuer)
    }

    /// Verifies a chain ordered leaf-first: `chain[0]` is the subject of
    /// interest; each `chain[i]`'s issuer must be certified by
    /// `chain[i+1]`, and the final issuer must be in this trust store.
    ///
    /// Returns the leaf's `(subject, key)` on success.
    pub fn verify_chain<'a>(
        &self,
        chain: &'a [Certificate],
        now: u64,
    ) -> Result<(&'a str, PublicKey), CertificateError> {
        let leaf = chain.first().ok_or(CertificateError::EmptyChain)?;
        for (i, cert) in chain.iter().enumerate() {
            // Find the key that vouches for this certificate: either a
            // trusted root, or the next certificate up the chain.
            if let Some(root_key) = self.trusted.get(&cert.issuer) {
                cert.verify(root_key, now)?;
                // Anchored; ignore any remaining (redundant) links.
                return Ok((&leaf.subject, leaf.subject_key));
            }
            let parent = chain
                .get(i + 1)
                .ok_or_else(|| CertificateError::UnknownIssuer(cert.issuer.clone()))?;
            if parent.subject != cert.issuer {
                return Err(CertificateError::BrokenChain {
                    expected_issuer: cert.issuer.clone(),
                    found_subject: parent.subject.clone(),
                });
            }
            cert.verify(&parent.subject_key, now)?;
        }
        // Walked the whole chain without reaching a trusted root.
        Err(CertificateError::UnknownIssuer(
            chain.last().expect("non-empty").issuer.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        root_keys: KeyPair,
        roots: RootOfTrust,
        rng: DetRng,
    }

    fn fixture() -> Fixture {
        let mut rng = DetRng::new(7777);
        let root_keys = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca.umn.edu", root_keys.public);
        Fixture {
            root_keys,
            roots,
            rng,
        }
    }

    #[test]
    fn single_cert_verifies_and_expires() {
        let mut fx = fixture();
        let subject_keys = KeyPair::generate(&mut fx.rng);
        let cert = Certificate::issue(
            "ajn://umn.edu/owner/alice",
            subject_keys.public,
            "ca.umn.edu",
            &fx.root_keys,
            1_000,
            1,
            &mut fx.rng,
        );
        cert.verify(&fx.root_keys.public, 999).unwrap();
        cert.verify(&fx.root_keys.public, 1_000).unwrap();
        assert_eq!(
            cert.verify(&fx.root_keys.public, 1_001),
            Err(CertificateError::Expired {
                not_after: 1_000,
                now: 1_001
            })
        );
    }

    #[test]
    fn tampered_fields_fail_verification() {
        let mut fx = fixture();
        let subject_keys = KeyPair::generate(&mut fx.rng);
        let cert = Certificate::issue(
            "alice",
            subject_keys.public,
            "ca.umn.edu",
            &fx.root_keys,
            1_000,
            1,
            &mut fx.rng,
        );

        let mut c = cert.clone();
        c.subject = "mallory".into();
        assert_eq!(
            c.verify(&fx.root_keys.public, 0),
            Err(CertificateError::BadSignature)
        );

        let mut c = cert.clone();
        c.subject_key = PublicKey(sig::G); // some other valid-looking element
        assert_eq!(
            c.verify(&fx.root_keys.public, 0),
            Err(CertificateError::BadSignature)
        );

        let mut c = cert.clone();
        c.not_after = u64::MAX; // stretch the lifetime
        assert_eq!(
            c.verify(&fx.root_keys.public, 0),
            Err(CertificateError::BadSignature)
        );

        let mut c = cert;
        c.serial += 1;
        assert_eq!(
            c.verify(&fx.root_keys.public, 0),
            Err(CertificateError::BadSignature)
        );
    }

    #[test]
    fn field_boundary_ambiguity_is_prevented() {
        // subject="ab", issuer="c" must not collide with subject="a",
        // issuer="bc" thanks to length prefixes.
        let k = PublicKey(sig::G);
        let a = to_be_signed("ab", &k, "c", 10, 1);
        let b = to_be_signed("a", &k, "bc", 10, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn chain_of_two_verifies() {
        let mut fx = fixture();
        // root → dept CA → alice
        let dept_keys = KeyPair::generate(&mut fx.rng);
        let dept_cert = Certificate::issue(
            "ca.cs.umn.edu",
            dept_keys.public,
            "ca.umn.edu",
            &fx.root_keys,
            10_000,
            2,
            &mut fx.rng,
        );
        let alice_keys = KeyPair::generate(&mut fx.rng);
        let alice_cert = Certificate::issue(
            "ajn://umn.edu/owner/alice",
            alice_keys.public,
            "ca.cs.umn.edu",
            &dept_keys,
            10_000,
            3,
            &mut fx.rng,
        );
        let chain = [alice_cert, dept_cert];
        let (subject, key) = fx.roots.verify_chain(&chain, 5_000).unwrap();
        assert_eq!(subject, "ajn://umn.edu/owner/alice");
        assert_eq!(key, alice_keys.public);
    }

    #[test]
    fn chain_broken_link_detected() {
        let mut fx = fixture();
        let dept_keys = KeyPair::generate(&mut fx.rng);
        let dept_cert = Certificate::issue(
            "ca.othername.edu", // does NOT match alice's issuer
            dept_keys.public,
            "ca.umn.edu",
            &fx.root_keys,
            10_000,
            2,
            &mut fx.rng,
        );
        let alice_keys = KeyPair::generate(&mut fx.rng);
        let alice_cert = Certificate::issue(
            "alice",
            alice_keys.public,
            "ca.cs.umn.edu",
            &dept_keys,
            10_000,
            3,
            &mut fx.rng,
        );
        let err = fx
            .roots
            .verify_chain(&[alice_cert, dept_cert], 0)
            .unwrap_err();
        assert!(matches!(err, CertificateError::BrokenChain { .. }));
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let mut fx = fixture();
        let rogue_keys = KeyPair::generate(&mut fx.rng);
        let cert = Certificate::issue(
            "alice",
            rogue_keys.public,
            "ca.rogue.org",
            &rogue_keys, // self-issued
            10_000,
            1,
            &mut fx.rng,
        );
        assert_eq!(
            fx.roots.verify_chain(&[cert], 0),
            Err(CertificateError::UnknownIssuer("ca.rogue.org".into()))
        );
    }

    #[test]
    fn expired_intermediate_invalidates_chain() {
        let mut fx = fixture();
        let dept_keys = KeyPair::generate(&mut fx.rng);
        let dept_cert = Certificate::issue(
            "ca.cs.umn.edu",
            dept_keys.public,
            "ca.umn.edu",
            &fx.root_keys,
            100, // expires early
            2,
            &mut fx.rng,
        );
        let alice_keys = KeyPair::generate(&mut fx.rng);
        let alice_cert = Certificate::issue(
            "alice",
            alice_keys.public,
            "ca.cs.umn.edu",
            &dept_keys,
            10_000,
            3,
            &mut fx.rng,
        );
        let err = fx
            .roots
            .verify_chain(&[alice_cert, dept_cert], 5_000)
            .unwrap_err();
        assert!(matches!(err, CertificateError::Expired { .. }));
    }

    #[test]
    fn empty_chain_rejected() {
        let fx = fixture();
        assert_eq!(
            fx.roots.verify_chain(&[], 0),
            Err(CertificateError::EmptyChain)
        );
    }

    #[test]
    fn revoking_trust_invalidates_future_verifications() {
        let mut fx = fixture();
        let subject_keys = KeyPair::generate(&mut fx.rng);
        let cert = Certificate::issue(
            "alice",
            subject_keys.public,
            "ca.umn.edu",
            &fx.root_keys,
            10_000,
            1,
            &mut fx.rng,
        );
        fx.roots
            .verify_chain(std::slice::from_ref(&cert), 0)
            .unwrap();
        assert!(fx.roots.revoke_trust("ca.umn.edu"));
        assert!(!fx.roots.revoke_trust("ca.umn.edu"));
        assert_eq!(
            fx.roots.verify_chain(&[cert], 0),
            Err(CertificateError::UnknownIssuer("ca.umn.edu".into()))
        );
    }
}
