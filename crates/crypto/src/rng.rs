//! Deterministic randomness for reproducible experiments.
//!
//! Every random choice in the reproduction (key generation, nonces,
//! workload sampling) flows through a [`DetRng`] seeded explicitly, so
//! every experiment table in EXPERIMENTS.md regenerates bit-identically.

/// SplitMix64: tiny, fast, full-period, and plenty for simulation use.
///
/// Not a CSPRNG — consistent with the crate-level caveat that the signature
/// scheme itself is simulation-grade.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Derives an independent stream for a labelled subsystem, so adding a
    /// consumer never perturbs other consumers' draws.
    pub fn fork(&mut self, label: &str) -> DetRng {
        let mut h = crate::sha256::Sha256::new();
        h.update(self.next_u64().to_le_bytes());
        h.update(label.as_bytes());
        DetRng::new(h.finalize().prefix_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` by rejection sampling (unbiased).
    /// `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Zone rejection: accept only draws below the largest multiple of
        // `bound`, eliminating modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_label_dependent_and_deterministic() {
        let mut root1 = DetRng::new(7);
        let mut root2 = DetRng::new(7);
        let mut fa1 = root1.fork("keys");
        let mut fa2 = root2.fork("keys");
        assert_eq!(fa1.next_u64(), fa2.next_u64());

        let mut root3 = DetRng::new(7);
        let mut fb = root3.fork("nonces");
        assert_ne!(fa1.next_u64(), fb.next_u64());
    }

    #[test]
    fn below_stays_in_bounds_and_hits_all_residues() {
        let mut rng = DetRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = DetRng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 13;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        DetRng::new(0).below(0);
    }
}
