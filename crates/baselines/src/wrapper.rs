//! The wrapper baseline (paper Section 5.4, third approach).
//!
//! *"Each resource is protected by encapsulating it in a wrapper object.
//! ... The wrapper accepts requests for the resource and determines
//! whether or not to allow the access based on the client's identity. For
//! this it needs to maintain an access control list."*
//!
//! Exactly one wrapper exists per resource (vs. one proxy per agent), and
//! the ACL — keyed by principal — is evaluated **on every invocation**.
//! The paper's criticisms reproduced here: the ACL must enumerate
//! principals up front ("in an open environment the identities of all
//! potential clients may not be known beforehand"), and each call pays the
//! full identity→rights evaluation that proxies pay only once.

use std::sync::Arc;

use ajanta_core::{MethodId, MethodTable, Resource, ResourceError, Rights};
use ajanta_naming::Urn;
use ajanta_vm::Value;
use parking_lot::RwLock;

/// Access failure from a wrapper (kept distinct from core's proxy errors
/// so benchmarks can't confuse the two paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapperError {
    /// Caller not on the ACL at all.
    UnknownPrincipal(Urn),
    /// On the ACL, but the rights do not cover this method.
    Denied {
        /// The refused caller.
        caller: Urn,
        /// The refused method.
        method: String,
    },
    /// Underlying resource error.
    Resource(ResourceError),
}

impl std::fmt::Display for WrapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WrapperError::UnknownPrincipal(p) => write!(f, "not on ACL: {p}"),
            WrapperError::Denied { caller, method } => {
                write!(f, "{caller} may not call {method}")
            }
            WrapperError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WrapperError {}

/// One shared wrapper around one resource.
pub struct WrappedResource {
    inner: Arc<dyn Resource>,
    /// Interned interface of `inner` — clients resolve names to
    /// [`MethodId`]s once, so the per-call cost is the ACL evaluation the
    /// mechanism intrinsically pays, not string hashing.
    table: Arc<MethodTable>,
    /// principal → rights; consulted per call.
    acl: RwLock<Vec<(Urn, Rights)>>,
}

impl WrappedResource {
    /// Wraps `inner` with an empty ACL (deny all).
    pub fn new(inner: Arc<dyn Resource>) -> Arc<Self> {
        let table = inner.method_table();
        Arc::new(WrappedResource {
            inner,
            table,
            acl: RwLock::new(Vec::new()),
        })
    }

    /// Resolves a method name against the wrapped interface — the
    /// bind-time step clients do once, like proxy binding.
    pub fn method_id(&self, name: &str) -> Option<MethodId> {
        self.table.id(name)
    }

    /// The wrapped interface's interned method universe.
    pub fn method_table(&self) -> &Arc<MethodTable> {
        &self.table
    }

    /// Adds (or extends) a principal's entry.
    pub fn grant(&self, principal: Urn, rights: Rights) {
        let mut acl = self.acl.write();
        match acl.iter_mut().find(|(p, _)| *p == principal) {
            Some((_, r)) => *r = r.union(&rights),
            None => acl.push((principal, rights)),
        }
    }

    /// Removes a principal entirely. Returns whether it was present.
    pub fn revoke(&self, principal: &Urn) -> bool {
        let mut acl = self.acl.write();
        let before = acl.len();
        acl.retain(|(p, _)| p != principal);
        acl.len() != before
    }

    /// Number of ACL entries.
    pub fn acl_len(&self) -> usize {
        self.acl.read().len()
    }

    /// The guarded invocation by interned id: identity lookup + rights
    /// evaluation on **every** call (the wrapper's intrinsic cost), then
    /// pass-through. Method dispatch is an array index, matching what
    /// the proxy pipeline pays.
    pub fn invoke_id(
        &self,
        caller: &Urn,
        method: MethodId,
        args: &[Value],
    ) -> Result<Value, WrapperError> {
        let name = self
            .table
            .name(method)
            .ok_or_else(|| WrapperError::Denied {
                caller: caller.clone(),
                method: format!("#{}", method.0),
            })?;
        let permitted = {
            let acl = self.acl.read();
            match acl.iter().find(|(p, _)| p == caller) {
                None => return Err(WrapperError::UnknownPrincipal(caller.clone())),
                Some((_, rights)) => rights.permits(self.inner.name(), name),
            }
        };
        if !permitted {
            return Err(WrapperError::Denied {
                caller: caller.clone(),
                method: name.to_string(),
            });
        }
        self.inner
            .invoke(name, args)
            .map_err(WrapperError::Resource)
    }

    /// Name-keyed invocation: resolves through the interned table and
    /// delegates to [`WrappedResource::invoke_id`]. Methods outside the
    /// wrapped interface still pay the per-call ACL evaluation before
    /// being refused, as the original string path did.
    pub fn invoke(
        &self,
        caller: &Urn,
        method: &str,
        args: &[Value],
    ) -> Result<Value, WrapperError> {
        match self.table.id(method) {
            Some(id) => self.invoke_id(caller, id, args),
            None => {
                let permitted = {
                    let acl = self.acl.read();
                    match acl.iter().find(|(p, _)| p == caller) {
                        None => return Err(WrapperError::UnknownPrincipal(caller.clone())),
                        Some((_, rights)) => rights.permits(self.inner.name(), method),
                    }
                };
                if !permitted {
                    return Err(WrapperError::Denied {
                        caller: caller.clone(),
                        method: method.to_string(),
                    });
                }
                self.inner
                    .invoke(method, args)
                    .map_err(WrapperError::Resource)
            }
        }
    }

    /// The wrapped resource's name.
    pub fn name(&self) -> &Urn {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RecordStore;

    fn wrapped() -> Arc<WrappedResource> {
        let store = RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![b"alpha".to_vec(), b"beta".to_vec()],
        );
        WrappedResource::new(store)
    }

    fn alice() -> Urn {
        Urn::owner("x.org", ["alice"]).unwrap()
    }
    fn bob() -> Urn {
        Urn::owner("x.org", ["bob"]).unwrap()
    }

    #[test]
    fn empty_acl_denies_everyone() {
        let w = wrapped();
        assert_eq!(
            w.invoke(&alice(), "count", &[]),
            Err(WrapperError::UnknownPrincipal(alice()))
        );
    }

    #[test]
    fn acl_grants_by_principal_and_method() {
        let w = wrapped();
        w.grant(
            alice(),
            Rights::none().grant_method(w.name().clone(), "count"),
        );
        assert_eq!(w.invoke(&alice(), "count", &[]).unwrap(), Value::Int(2));
        assert!(matches!(
            w.invoke(&alice(), "scan", &[Value::str("a")]),
            Err(WrapperError::Denied { .. })
        ));
        assert!(matches!(
            w.invoke(&bob(), "count", &[]),
            Err(WrapperError::UnknownPrincipal(_))
        ));
    }

    #[test]
    fn interned_path_matches_string_path() {
        let w = wrapped();
        w.grant(
            alice(),
            Rights::none().grant_method(w.name().clone(), "count"),
        );
        let count = w.method_id("count").unwrap();
        let scan = w.method_id("scan").unwrap();
        assert_eq!(w.invoke_id(&alice(), count, &[]).unwrap(), Value::Int(2));
        assert!(matches!(
            w.invoke_id(&alice(), scan, &[Value::str("a")]),
            Err(WrapperError::Denied { .. })
        ));
        assert!(matches!(
            w.invoke_id(&bob(), count, &[]),
            Err(WrapperError::UnknownPrincipal(_))
        ));
        assert_eq!(w.method_id("ghost"), None);
    }

    #[test]
    fn grants_accumulate() {
        let w = wrapped();
        w.grant(
            alice(),
            Rights::none().grant_method(w.name().clone(), "count"),
        );
        w.grant(
            alice(),
            Rights::none().grant_method(w.name().clone(), "scan"),
        );
        assert_eq!(w.acl_len(), 1);
        w.invoke(&alice(), "count", &[]).unwrap();
        w.invoke(&alice(), "scan", &[Value::str("a")]).unwrap();
    }

    #[test]
    fn revocation_is_wholesale() {
        // The paper's point: wrapper ACLs revoke principals, not
        // individual live capabilities.
        let w = wrapped();
        w.grant(alice(), Rights::all());
        w.invoke(&alice(), "count", &[]).unwrap();
        assert!(w.revoke(&alice()));
        assert!(!w.revoke(&alice()));
        assert!(matches!(
            w.invoke(&alice(), "count", &[]),
            Err(WrapperError::UnknownPrincipal(_))
        ));
    }

    #[test]
    fn resource_errors_pass_through() {
        let w = wrapped();
        w.grant(alice(), Rights::all());
        assert!(matches!(
            w.invoke(&alice(), "get", &[Value::Int(99)]),
            Err(WrapperError::Resource(ResourceError::Failed(_)))
        ));
    }

    #[test]
    fn one_wrapper_serves_all_principals() {
        let w = wrapped();
        w.grant(alice(), Rights::all());
        w.grant(bob(), Rights::all());
        // Same object, same checks — no per-agent state.
        w.invoke(&alice(), "count", &[]).unwrap();
        w.invoke(&bob(), "count", &[]).unwrap();
        assert_eq!(w.acl_len(), 2);
    }
}
