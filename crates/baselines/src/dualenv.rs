//! The dual-environment (Safe Tcl) baseline (paper Section 5.4, fourth
//! approach).
//!
//! *"Another approach, exemplified by Safe Tcl, is to use two execution
//! environments — a safe one which hosts the agent, and a more powerful
//! trusted one which provides access to resources. Whenever the agent
//! calls a potentially dangerous operation, the safe environment acts as
//! a monitor and screens the request ... it can incur substantial
//! overhead because it may require a transition across system-level
//! protection domains on every resource access."*
//!
//! The protection-domain transition here is **real**, not a fudge factor:
//! the trusted environment runs on its own OS thread; every access
//! marshals its arguments to canonical bytes, crosses to the trusted
//! thread over a channel, is policy-checked and executed there, and the
//! marshaled result crosses back. That is exactly the cost structure of
//! interpreter-to-interpreter (or process-to-process) crossings in the
//! systems the paper describes.

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use ajanta_core::{MethodId, MethodTable, Resource, SecurityPolicy};
use ajanta_naming::Urn;
use ajanta_vm::Value;
use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire};

/// Access failure from the dual environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualEnvError {
    /// The trusted side's policy denied the request.
    Denied(String),
    /// No such resource in the trusted environment.
    UnknownResource(Urn),
    /// Underlying resource failure (message text).
    Resource(String),
    /// The trusted environment is gone.
    Disconnected,
    /// A marshaled message failed to decode.
    Marshal(String),
}

impl std::fmt::Display for DualEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DualEnvError::Denied(m) => write!(f, "denied: {m}"),
            DualEnvError::UnknownResource(r) => write!(f, "no resource {r}"),
            DualEnvError::Resource(m) => write!(f, "resource failed: {m}"),
            DualEnvError::Disconnected => f.write_str("trusted environment is down"),
            DualEnvError::Marshal(m) => write!(f, "marshal error: {m}"),
        }
    }
}

impl std::error::Error for DualEnvError {}

/// A marshaled request crossing the domain boundary.
struct Crossing {
    /// Marshaled (agent, owner, resource, method, args).
    request: Vec<u8>,
    /// Where the marshaled reply goes.
    reply: Sender<Vec<u8>>,
}

/// How the request names its method on the wire. The interned form is
/// the common case — a varint id resolved at bind time in the safe
/// environment; the string form survives only for methods outside the
/// published interface (cold path, same semantics as before interning).
enum MethodSel<'a> {
    Id(MethodId),
    Name(&'a str),
}

fn marshal_request(
    agent: &Urn,
    owner: &Urn,
    resource: &Urn,
    method: &MethodSel<'_>,
    args: &[Value],
) -> Vec<u8> {
    let mut e = Encoder::new();
    agent.encode(&mut e);
    owner.encode(&mut e);
    resource.encode(&mut e);
    match method {
        MethodSel::Id(id) => {
            e.put_u8(0);
            e.put_varint(u64::from(id.0));
        }
        MethodSel::Name(name) => {
            e.put_u8(1);
            e.put_str(name);
        }
    }
    encode_seq(args, &mut e);
    e.finish()
}

fn marshal_reply(result: &Result<Value, DualEnvError>) -> Vec<u8> {
    let mut e = Encoder::new();
    match result {
        Ok(v) => {
            e.put_u8(0);
            v.encode(&mut e);
        }
        Err(err) => {
            e.put_u8(1);
            e.put_str(&err.to_string());
            // Tag subtype for precise round-tripping of common cases.
            e.put_u8(match err {
                DualEnvError::Denied(_) => 0,
                DualEnvError::UnknownResource(_) => 1,
                _ => 2,
            });
        }
    }
    e.finish()
}

fn unmarshal_reply(bytes: &[u8]) -> Result<Value, DualEnvError> {
    let mut d = Decoder::new(bytes);
    match d
        .get_u8()
        .map_err(|e| DualEnvError::Marshal(e.to_string()))?
    {
        0 => Value::decode(&mut d).map_err(|e| DualEnvError::Marshal(e.to_string())),
        1 => {
            let msg = d
                .get_str()
                .map_err(|e| DualEnvError::Marshal(e.to_string()))?;
            let sub = d.get_u8().unwrap_or(2);
            Err(match sub {
                0 => DualEnvError::Denied(msg),
                1 => DualEnvError::Resource(msg), // name lost in transit; message retained
                _ => DualEnvError::Resource(msg),
            })
        }
        t => Err(DualEnvError::Marshal(format!("bad reply tag {t}"))),
    }
}

/// The safe-environment handle agents call through.
pub struct DualEnv {
    tx: Sender<Crossing>,
    /// The published interfaces of the trusted side's resources — the
    /// safe environment resolves method names to interned ids against
    /// these once, at bind time, so the per-call wire traffic carries a
    /// varint id instead of a method string.
    interfaces: BTreeMap<Urn, Arc<MethodTable>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl DualEnv {
    /// Starts the trusted environment with `policy` and `resources`.
    pub fn start(policy: SecurityPolicy, resources: Vec<Arc<dyn Resource>>) -> DualEnv {
        let (tx, rx): (Sender<Crossing>, Receiver<Crossing>) = unbounded();
        let table: BTreeMap<Urn, (Arc<dyn Resource>, Arc<MethodTable>)> = resources
            .into_iter()
            .map(|r| {
                let t = r.method_table();
                (r.name().clone(), (r, t))
            })
            .collect();
        let interfaces: BTreeMap<Urn, Arc<MethodTable>> = table
            .iter()
            .map(|(name, (_, t))| (name.clone(), Arc::clone(t)))
            .collect();
        let worker = std::thread::Builder::new()
            .name("trusted-env".into())
            .spawn(move || {
                // The trusted domain: unmarshal, screen, execute, marshal.
                while let Ok(crossing) = rx.recv() {
                    let result = (|| {
                        let mut d = Decoder::new(&crossing.request);
                        let agent = Urn::decode(&mut d)
                            .map_err(|e| DualEnvError::Marshal(e.to_string()))?;
                        let owner = Urn::decode(&mut d)
                            .map_err(|e| DualEnvError::Marshal(e.to_string()))?;
                        let resource = Urn::decode(&mut d)
                            .map_err(|e| DualEnvError::Marshal(e.to_string()))?;
                        let entry = table.get(&resource);
                        let method: String = match d
                            .get_u8()
                            .map_err(|e| DualEnvError::Marshal(e.to_string()))?
                        {
                            0 => {
                                let raw = d
                                    .get_varint()
                                    .map_err(|e| DualEnvError::Marshal(e.to_string()))?;
                                let id = u16::try_from(raw).map_err(|_| {
                                    DualEnvError::Marshal(format!("method id {raw}"))
                                })?;
                                // Interned ids are only meaningful relative
                                // to a published interface.
                                entry
                                    .and_then(|(_, t)| t.name(MethodId(id)))
                                    .ok_or_else(|| {
                                        DualEnvError::Marshal(format!("unknown method id {id}"))
                                    })?
                                    .to_string()
                            }
                            1 => d
                                .get_str()
                                .map_err(|e| DualEnvError::Marshal(e.to_string()))?,
                            t => return Err(DualEnvError::Marshal(format!("bad method tag {t}"))),
                        };
                        let args: Vec<Value> =
                            decode_seq(&mut d).map_err(|e| DualEnvError::Marshal(e.to_string()))?;
                        if !policy
                            .rights_for(&agent, &owner)
                            .permits(&resource, &method)
                        {
                            return Err(DualEnvError::Denied(format!(
                                "{agent} may not call {method} on {resource}"
                            )));
                        }
                        let (target, _) =
                            entry.ok_or_else(|| DualEnvError::UnknownResource(resource.clone()))?;
                        target
                            .invoke(&method, &args)
                            .map_err(|e| DualEnvError::Resource(e.to_string()))
                    })();
                    let _ = crossing.reply.send(marshal_reply(&result));
                }
            })
            .expect("spawning trusted environment");
        DualEnv {
            tx,
            interfaces,
            worker: Some(worker),
        }
    }

    /// Bind-time resolution: a method name against a trusted resource's
    /// published interface.
    pub fn method_id(&self, resource: &Urn, method: &str) -> Option<MethodId> {
        self.interfaces.get(resource)?.id(method)
    }

    /// One guarded access by interned id: marshal (varint id, no method
    /// string) → cross domains → screen → execute → cross back →
    /// unmarshal. The crossing itself is the mechanism's intrinsic cost.
    pub fn invoke_id(
        &self,
        agent: &Urn,
        owner: &Urn,
        resource: &Urn,
        method: MethodId,
        args: &[Value],
    ) -> Result<Value, DualEnvError> {
        self.cross(marshal_request(
            agent,
            owner,
            resource,
            &MethodSel::Id(method),
            args,
        ))
    }

    /// Name-keyed access: resolves the id at the safe-side boundary when
    /// the interface is published; methods outside it still cross as
    /// strings and get the trusted side's full screening (cold path).
    pub fn invoke(
        &self,
        agent: &Urn,
        owner: &Urn,
        resource: &Urn,
        method: &str,
        args: &[Value],
    ) -> Result<Value, DualEnvError> {
        let sel = match self.method_id(resource, method) {
            Some(id) => MethodSel::Id(id),
            None => MethodSel::Name(method),
        };
        self.cross(marshal_request(agent, owner, resource, &sel, args))
    }

    fn cross(&self, request: Vec<u8>) -> Result<Value, DualEnvError> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Crossing {
                request,
                reply: reply_tx,
            })
            .map_err(|_| DualEnvError::Disconnected)?;
        let reply = reply_rx.recv().map_err(|_| DualEnvError::Disconnected)?;
        unmarshal_reply(&reply)
    }
}

impl Drop for DualEnv {
    fn drop(&mut self) {
        // Closing the channel stops the trusted thread.
        let (dead_tx, _) = unbounded();
        self.tx = dead_tx;
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RecordStore;
    use ajanta_core::{PrincipalPattern, Rights};

    fn setup() -> (DualEnv, Urn, Urn, Urn) {
        let rname = Urn::resource("x.org", ["db"]).unwrap();
        let agent = Urn::agent("x.org", ["a"]).unwrap();
        let owner = Urn::owner("x.org", ["alice"]).unwrap();
        let policy = SecurityPolicy::new().allow(
            PrincipalPattern::Exact(owner.clone()),
            Rights::none()
                .grant_method(rname.clone(), "count")
                .grant_method(rname.clone(), "scan"),
        );
        let store = RecordStore::new(
            rname.clone(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![b"alpha".to_vec(), b"beta".to_vec()],
        );
        (DualEnv::start(policy, vec![store]), agent, owner, rname)
    }

    #[test]
    fn allowed_calls_cross_and_return() {
        let (env, agent, owner, rname) = setup();
        assert_eq!(
            env.invoke(&agent, &owner, &rname, "count", &[]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            env.invoke(&agent, &owner, &rname, "scan", &[Value::str("al")])
                .unwrap(),
            Value::Bytes(b"alpha".to_vec())
        );
    }

    #[test]
    fn screening_happens_in_the_trusted_domain() {
        let (env, agent, owner, rname) = setup();
        assert!(matches!(
            env.invoke(&agent, &owner, &rname, "get", &[Value::Int(0)]),
            Err(DualEnvError::Denied(_))
        ));
        let eve = Urn::owner("x.org", ["eve"]).unwrap();
        assert!(matches!(
            env.invoke(&agent, &eve, &rname, "count", &[]),
            Err(DualEnvError::Denied(_))
        ));
    }

    #[test]
    fn interned_crossing_matches_string_crossing() {
        let (env, agent, owner, rname) = setup();
        let count = env.method_id(&rname, "count").unwrap();
        let get = env.method_id(&rname, "get").unwrap();
        assert_eq!(
            env.invoke_id(&agent, &owner, &rname, count, &[]).unwrap(),
            Value::Int(2)
        );
        // Screening still happens in the trusted domain, id or not.
        assert!(matches!(
            env.invoke_id(&agent, &owner, &rname, get, &[Value::Int(0)]),
            Err(DualEnvError::Denied(_))
        ));
        // Methods outside the published interface don't intern…
        assert_eq!(env.method_id(&rname, "ghost"), None);
        // …and an id outside the trusted side's table is refused there
        // (the reply encoding folds marshal faults into `Resource`).
        let err = env
            .invoke_id(&agent, &owner, &rname, MethodId(99), &[])
            .unwrap_err();
        assert!(err.to_string().contains("unknown method id 99"), "{err}");
    }

    #[test]
    fn resource_errors_survive_the_crossing() {
        let (env, agent, owner, rname) = setup();
        // Allowed method, bad arguments → resource error, marshaled back.
        let err = env
            .invoke(&agent, &owner, &rname, "scan", &[Value::Int(5)])
            .unwrap_err();
        assert!(matches!(err, DualEnvError::Resource(_)));
    }

    #[test]
    fn unknown_resource_reported() {
        let (env, agent, owner, _) = setup();
        let ghost = Urn::resource("x.org", ["ghost"]).unwrap();
        // Policy has no grant for ghost → denied before lookup.
        assert!(matches!(
            env.invoke(&agent, &owner, &ghost, "count", &[]),
            Err(DualEnvError::Denied(_))
        ));
    }

    #[test]
    fn concurrent_callers_are_serialized_safely() {
        let (env, agent, owner, rname) = setup();
        let env = Arc::new(env);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let env = Arc::clone(&env);
                let (agent, owner, rname) = (agent.clone(), owner.clone(), rname.clone());
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(
                            env.invoke(&agent, &owner, &rname, "count", &[]).unwrap(),
                            Value::Int(2)
                        );
                    }
                });
            }
        });
    }
}
