//! Remote Evaluation (Stamos & Gifford), the paper's Section 1
//! intermediate point between RPC and mobile agents.
//!
//! *"the client sends its own procedure code to a remote server and
//! requests the server to execute it and return the results. Thus in RPC,
//! data is transmitted between the client and server in both directions
//! whereas in REV, code is sent from the client to the server, and data is
//! returned to the client."*
//!
//! The shipped code is an AgentScript module, verified and fuel-bounded by
//! the server before execution, with access to the local record store via
//! two deliberately fine-grained host calls (`rev.count`, `rev.get`): the
//! *client's* code does the filtering at the server. REV differs from a
//! mobile agent in exactly the ways the paper lists: no autonomy, no
//! multi-hop migration, no carried mutable state — one shot, one reply.

use std::sync::Arc;
use std::time::Duration;

use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{Endpoint, ReplayGuard, SealedDatagram, SimNet};
use ajanta_vm::{
    ExecOutcome, HostError, HostImport, HostInterface, HostResponse, Interpreter, Limits, Module,
    Namespace, Ty, Value,
};
use ajanta_wire::{Decoder, Encoder, Wire, WireError};

use crate::rpc::RpcResponse;
use crate::store::RecordStore;

/// A remote-evaluation request: code + entry + argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevRequest {
    /// Correlation id.
    pub id: u64,
    /// The code to evaluate (entry signature `(bytes) -> int` or any
    /// function returning bytes/int; result is rendered as a [`Value`]).
    pub module: Module,
    /// Entry function name.
    pub entry: String,
    /// Argument passed to the entry.
    pub arg: Vec<u8>,
}

impl Wire for RevRequest {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.id);
        self.module.encode(e);
        e.put_str(&self.entry);
        e.put_bytes(&self.arg);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(RevRequest {
            id: d.get_varint()?,
            module: Module::decode(d)?,
            entry: d.get_str()?,
            arg: d.get_bytes()?,
        })
    }
}

/// The REV host interface: fine-grained store access only.
struct StoreHost {
    store: Arc<RecordStore>,
}

impl HostInterface for StoreHost {
    fn call(&mut self, import: &HostImport, args: &[Value]) -> Result<HostResponse, HostError> {
        match import.name.as_str() {
            "rev.count" => {
                if !import.params.is_empty() || import.ret != Ty::Int {
                    return Err(HostError::Denied("rev.count signature".into()));
                }
                Ok(HostResponse::Value(Value::Int(self.store.len() as i64)))
            }
            "rev.get" => {
                if import.params.as_slice() != [Ty::Int] || import.ret != Ty::Bytes {
                    return Err(HostError::Denied("rev.get signature".into()));
                }
                let i = args[0].as_int().expect("verified");
                match usize::try_from(i).ok().and_then(|i| self.store.get(i)) {
                    Some(r) => Ok(HostResponse::Value(Value::Bytes(r.to_vec()))),
                    None => Err(HostError::Failed(format!("record {i} out of range"))),
                }
            }
            other => Err(HostError::Denied(format!("REV does not provide {other}"))),
        }
    }
}

/// A REV server on its own thread.
pub struct RevServer {
    name: Urn,
    join: Option<std::thread::JoinHandle<()>>,
    stop: crossbeam::channel::Sender<()>,
}

impl RevServer {
    /// Starts the server, executing shipped code against `store` under
    /// `limits`.
    pub fn start(
        net: &SimNet,
        identity: ChannelIdentity,
        keys: KeyPair,
        roots: RootOfTrust,
        store: Arc<RecordStore>,
        limits: Limits,
        seed: u64,
    ) -> RevServer {
        let endpoint = net.attach(identity.name.clone()).expect("rev name free");
        let name = identity.name.clone();
        let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
        let join = std::thread::Builder::new()
            .name("rev-server".into())
            .spawn(move || {
                let mut guard = ReplayGuard::new(u64::MAX / 4);
                let mut rng = DetRng::new(seed);
                loop {
                    if stop_rx.try_recv().is_ok() {
                        return;
                    }
                    let delivery = match endpoint.recv_timeout(Duration::from_millis(10)) {
                        Ok(d) => d,
                        Err(_) => continue,
                    };
                    let now = endpoint.net().clock().now();
                    let Ok(datagram) = SealedDatagram::from_bytes(&delivery.payload) else {
                        continue;
                    };
                    let Ok((sender, plaintext)) =
                        datagram.open(&identity, &keys, &roots, now, &mut guard)
                    else {
                        continue;
                    };
                    let Ok(request) = RevRequest::from_bytes(&plaintext) else {
                        continue;
                    };

                    // Verify the shipped code in an empty namespace, then
                    // run it fuel-bounded against the store host.
                    let result = (|| -> Result<Value, String> {
                        let mut ns = Namespace::new();
                        let verified = ns
                            .load(request.module.clone())
                            .map_err(|e| format!("code rejected: {e}"))?;
                        let mut host = StoreHost {
                            store: Arc::clone(&store),
                        };
                        let mut interp = Interpreter::new(std::sync::Arc::clone(&verified), limits);
                        match interp.run(
                            &request.entry,
                            vec![Value::Bytes(request.arg.clone())],
                            &mut host,
                        ) {
                            ExecOutcome::Finished(v) => Ok(v),
                            ExecOutcome::Trapped { kind, .. } => Err(format!("trap: {kind}")),
                            ExecOutcome::OutOfFuel => Err("fuel exhausted".into()),
                            ExecOutcome::HostStopped { .. } => {
                                Err("REV code cannot migrate".into())
                            }
                        }
                    })();

                    let response = RpcResponse {
                        id: request.id,
                        result,
                    };
                    let Some(leaf) = datagram.chain.first() else {
                        continue;
                    };
                    let reply = SealedDatagram::seal(
                        &identity,
                        &sender,
                        leaf.subject_key,
                        &response.to_bytes(),
                        now,
                        &mut rng,
                    );
                    let _ = endpoint.send(&sender, reply.to_bytes());
                }
            })
            .expect("spawning rev server");
        RevServer {
            name,
            join: Some(join),
            stop: stop_tx,
        }
    }

    /// The server's name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// Stops the server thread.
    pub fn stop(mut self) {
        let _ = self.stop.send(());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Client-side helper mirroring [`crate::rpc::RpcClient::call`] for REV.
pub struct RevClient {
    endpoint: Endpoint,
    identity: ChannelIdentity,
    keys: KeyPair,
    roots: RootOfTrust,
    guard: ReplayGuard,
    rng: DetRng,
    next_id: u64,
}

impl RevClient {
    /// Attaches a client endpoint.
    pub fn new(
        net: &SimNet,
        identity: ChannelIdentity,
        keys: KeyPair,
        roots: RootOfTrust,
        seed: u64,
    ) -> RevClient {
        let endpoint = net.attach(identity.name.clone()).expect("client name free");
        RevClient {
            endpoint,
            identity,
            keys,
            roots,
            guard: ReplayGuard::new(u64::MAX / 4),
            rng: DetRng::new(seed),
            next_id: 1,
        }
    }

    /// Ships `module` for evaluation and blocks for the result.
    pub fn evaluate(
        &mut self,
        server: &Urn,
        server_key: ajanta_crypto::sig::PublicKey,
        module: Module,
        entry: &str,
        arg: Vec<u8>,
    ) -> Result<Value, String> {
        let id = self.next_id;
        self.next_id += 1;
        let request = RevRequest {
            id,
            module,
            entry: entry.to_string(),
            arg,
        };
        let now = self.endpoint.net().clock().now();
        let datagram = SealedDatagram::seal(
            &self.identity,
            server,
            server_key,
            &request.to_bytes(),
            now,
            &mut self.rng,
        );
        self.endpoint
            .send(server, datagram.to_bytes())
            .map_err(|e| e.to_string())?;

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let delivery = self
                .endpoint
                .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
                .map_err(|_| "rev timeout".to_string())?;
            let now = self.endpoint.net().clock().now();
            let Ok(dg) = SealedDatagram::from_bytes(&delivery.payload) else {
                continue;
            };
            let Ok((_, plaintext)) = dg.open(
                &self.identity,
                &self.keys,
                &self.roots,
                now,
                &mut self.guard,
            ) else {
                continue;
            };
            let Ok(response) = RpcResponse::from_bytes(&plaintext) else {
                continue;
            };
            if response.id == id {
                return response.result;
            }
        }
    }
}

/// Builds the canonical REV filter program: scans all records via
/// `rev.get`, keeps those containing the selector (passed as the entry
/// argument), returns them newline-joined. Shared by tests, benches and
/// EXPERIMENTS.md so every consumer measures the same code.
pub fn filter_program() -> Module {
    let src = r#"
        module rev-filter
        import rev.count () -> int
        import rev.get (int) -> bytes
        data nl = "\n"

        func filter(selector: bytes) -> bytes
          locals i: int, n: int, acc: bytes, rec: bytes
          hostcall rev.count
          store n
        loop:
          load i
          load n
          lt
          jz done
          load i
          hostcall rev.get
          store rec
          load rec
          load selector
          call contains
          jz next
          load acc
          blen
          jz first
          load acc
          pushd nl
          bconcat
          load rec
          bconcat
          store acc
          jump next
        first:
          load rec
          store acc
        next:
          load i
          push 1
          add
          store i
          jump loop
        done:
          load acc
          ret

        # substring search: returns 1 when needle occurs in hay
        func contains(hay: bytes, needle: bytes) -> int
          locals i: int, j: int, limit: int, ok: int
          load needle
          blen
          jz yes
          load hay
          blen
          load needle
          blen
          sub
          store limit
        outer:
          load i
          load limit
          le
          jz no
          push 1
          store ok
          push 0
          store j
        inner:
          load j
          load needle
          blen
          lt
          jz check
          load hay
          load i
          load j
          add
          bindex
          load needle
          load j
          bindex
          ne
          jz stepj
          push 0
          store ok
          jump check
        stepj:
          load j
          push 1
          add
          store j
          jump inner
        check:
          load ok
          jz stepi
          push 1
          ret
        stepi:
          load i
          push 1
          add
          store i
          jump outer
        no:
          push 0
          ret
        yes:
          push 1
          ret
    "#;
    ajanta_vm::assemble(src).expect("rev filter program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_crypto::cert::Certificate;
    use ajanta_net::LinkModel;
    use ajanta_vm::verify;

    #[test]
    fn filter_program_verifies_and_filters() {
        let module = filter_program();
        verify(module.clone()).expect("filter program verifies");

        // Run locally against a StoreHost to check semantics.
        let store = RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![
                b"red fox".to_vec(),
                b"blue jay".to_vec(),
                b"red hen".to_vec(),
            ],
        );
        let mut ns = Namespace::new();
        let verified = ns.load(module).unwrap();
        let mut host = StoreHost { store };
        let mut interp = Interpreter::new(std::sync::Arc::clone(&verified), Limits::default());
        let out = interp.run("filter", vec![Value::str("red")], &mut host);
        assert_eq!(
            out,
            ExecOutcome::Finished(Value::Bytes(b"red fox\nred hen".to_vec()))
        );
    }

    #[test]
    fn filter_program_empty_selector_matches_all() {
        let store = RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![b"a".to_vec(), b"b".to_vec()],
        );
        let mut ns = Namespace::new();
        let verified = ns.load(filter_program()).unwrap();
        let mut host = StoreHost { store };
        let mut interp = Interpreter::new(std::sync::Arc::clone(&verified), Limits::default());
        let out = interp.run("filter", vec![Value::str("")], &mut host);
        assert_eq!(out, ExecOutcome::Finished(Value::Bytes(b"a\nb".to_vec())));
    }

    #[test]
    fn end_to_end_remote_evaluation() {
        let mut rng = DetRng::new(41);
        let net = SimNet::new(LinkModel::default(), 2);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let mk = |name: &Urn, serial, rng: &mut DetRng| {
            let keys = KeyPair::generate(rng);
            let cert = Certificate::issue(
                name.to_string(),
                keys.public,
                "ca",
                &ca,
                u64::MAX,
                serial,
                rng,
            );
            (
                ChannelIdentity {
                    name: name.clone(),
                    keys: keys.clone(),
                    chain: vec![cert],
                },
                keys,
            )
        };
        let sname = Urn::server("x.org", ["rev"]).unwrap();
        let cname = Urn::server("y.org", ["client"]).unwrap();
        let (sid, skeys) = mk(&sname, 1, &mut rng);
        let (cid, ckeys) = mk(&cname, 2, &mut rng);
        let server_key = skeys.public;

        let store = RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![
                b"widget red".to_vec(),
                b"widget blue".to_vec(),
                b"gadget red".to_vec(),
            ],
        );
        let server = RevServer::start(&net, sid, skeys, roots.clone(), store, Limits::default(), 5);
        let mut client = RevClient::new(&net, cid, ckeys, roots, 6);

        let out = client
            .evaluate(
                &sname,
                server_key,
                filter_program(),
                "filter",
                b"widget".to_vec(),
            )
            .unwrap();
        assert_eq!(out, Value::Bytes(b"widget red\nwidget blue".to_vec()));

        // Two messages total: code out, matches back.
        assert_eq!(net.stats().messages_delivered, 2);
        server.stop();
    }

    #[test]
    fn hostile_rev_code_is_contained() {
        let mut rng = DetRng::new(43);
        let net = SimNet::new(LinkModel::default(), 3);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let sname = Urn::server("x.org", ["rev"]).unwrap();
        let cname = Urn::server("y.org", ["client"]).unwrap();
        let skeys = KeyPair::generate(&mut rng);
        let scert = Certificate::issue(
            sname.to_string(),
            skeys.public,
            "ca",
            &ca,
            u64::MAX,
            1,
            &mut rng,
        );
        let ckeys = KeyPair::generate(&mut rng);
        let ccert = Certificate::issue(
            cname.to_string(),
            ckeys.public,
            "ca",
            &ca,
            u64::MAX,
            2,
            &mut rng,
        );
        let sid = ChannelIdentity {
            name: sname.clone(),
            keys: skeys.clone(),
            chain: vec![scert],
        };
        let cid = ChannelIdentity {
            name: cname.clone(),
            keys: ckeys.clone(),
            chain: vec![ccert],
        };
        let server_key = skeys.public;
        let store = RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![b"r".to_vec()],
        );
        let server = RevServer::start(
            &net,
            sid,
            skeys,
            roots.clone(),
            store,
            Limits {
                fuel: 10_000,
                ..Limits::default()
            },
            7,
        );
        let mut client = RevClient::new(&net, cid, ckeys, roots, 8);

        // Infinite loop: contained by fuel.
        let spin = ajanta_vm::assemble(
            "module spin\nfunc filter(arg: bytes) -> bytes\nloop:\n  jump loop",
        )
        .unwrap();
        let err = client
            .evaluate(&sname, server_key, spin, "filter", vec![])
            .unwrap_err();
        assert!(err.contains("fuel"));

        // Unverifiable code: rejected before execution.
        let mut b = ajanta_vm::ModuleBuilder::new("bad");
        b.function(
            "filter",
            [Ty::Bytes],
            [],
            Ty::Bytes,
            vec![ajanta_vm::Op::Add, ajanta_vm::Op::Ret],
        );
        let err = client
            .evaluate(&sname, server_key, b.build(), "filter", vec![])
            .unwrap_err();
        assert!(err.contains("rejected"));
        server.stop();
    }
}
