//! The RPC substrate (paper Section 1's traditional client–server
//! paradigm).
//!
//! *"The RPC model is usually synchronous, i.e., the client suspends
//! itself after sending a request to the server, waiting for the results
//! of the call."* Data crosses the network **both ways on every call**;
//! the experiments sweep how that compares with shipping code to the
//! data.
//!
//! Requests and responses travel as sealed datagrams, exactly like agent
//! transfers, so the byte accounting compares like with like.

use std::sync::Arc;
use std::time::Duration;

use ajanta_core::Resource;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{Endpoint, ReplayGuard, SealedDatagram, SimNet};
use ajanta_vm::Value;
use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire, WireError};

use crate::store::RecordStore;

/// One remote procedure call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcRequest {
    /// Client-chosen correlation id.
    pub id: u64,
    /// Operation name (a [`RecordStore`] method).
    pub op: String,
    /// Arguments.
    pub args: Vec<Value>,
}

impl Wire for RpcRequest {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.id);
        e.put_str(&self.op);
        encode_seq(&self.args, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(RpcRequest {
            id: d.get_varint()?,
            op: d.get_str()?,
            args: decode_seq(d)?,
        })
    }
}

/// The server's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// The result or an error message.
    pub result: Result<Value, String>,
}

impl Wire for RpcResponse {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.id);
        match &self.result {
            Ok(v) => {
                e.put_u8(0);
                v.encode(e);
            }
            Err(m) => {
                e.put_u8(1);
                e.put_str(m);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let id = d.get_varint()?;
        let result = match d.get_u8()? {
            0 => Ok(Value::decode(d)?),
            1 => Err(d.get_str()?),
            tag => {
                return Err(WireError::BadTag {
                    ty: "RpcResponse",
                    tag,
                })
            }
        };
        Ok(RpcResponse { id, result })
    }
}

/// A record-store RPC server on its own thread.
pub struct RpcServer {
    name: Urn,
    join: Option<std::thread::JoinHandle<()>>,
    stop: crossbeam::channel::Sender<()>,
}

impl RpcServer {
    /// Starts a server named by `identity`, serving `store`.
    pub fn start(
        net: &SimNet,
        identity: ChannelIdentity,
        keys: KeyPair,
        roots: RootOfTrust,
        store: Arc<RecordStore>,
        seed: u64,
    ) -> RpcServer {
        let endpoint = net.attach(identity.name.clone()).expect("rpc name free");
        let name = identity.name.clone();
        let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
        let join = std::thread::Builder::new()
            .name("rpc-server".into())
            .spawn(move || {
                let mut guard = ReplayGuard::new(u64::MAX / 4);
                let mut rng = DetRng::new(seed);
                loop {
                    if stop_rx.try_recv().is_ok() {
                        return;
                    }
                    let delivery = match endpoint.recv_timeout(Duration::from_millis(10)) {
                        Ok(d) => d,
                        Err(_) => continue,
                    };
                    let now = endpoint.net().clock().now();
                    let Ok(datagram) = SealedDatagram::from_bytes(&delivery.payload) else {
                        continue;
                    };
                    let Ok((sender, plaintext)) =
                        datagram.open(&identity, &keys, &roots, now, &mut guard)
                    else {
                        continue;
                    };
                    let Ok(request) = RpcRequest::from_bytes(&plaintext) else {
                        continue;
                    };
                    let result = store
                        .invoke(&request.op, &request.args)
                        .map_err(|e| e.to_string());
                    let response = RpcResponse {
                        id: request.id,
                        result,
                    };
                    // Reply sealed to the caller: needs the caller's key,
                    // which came certified inside the request datagram.
                    let Some(leaf) = datagram.chain.first() else {
                        continue;
                    };
                    let reply = SealedDatagram::seal(
                        &identity,
                        &sender,
                        leaf.subject_key,
                        &response.to_bytes(),
                        now,
                        &mut rng,
                    );
                    let _ = endpoint.send(&sender, reply.to_bytes());
                }
            })
            .expect("spawning rpc server");
        RpcServer {
            name,
            join: Some(join),
            stop: stop_tx,
        }
    }

    /// The server's network name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// Stops the server thread.
    pub fn stop(mut self) {
        let _ = self.stop.send(());
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// A synchronous RPC client.
pub struct RpcClient {
    endpoint: Endpoint,
    identity: ChannelIdentity,
    keys: KeyPair,
    roots: RootOfTrust,
    guard: ReplayGuard,
    rng: DetRng,
    next_id: u64,
}

impl RpcClient {
    /// Attaches a client endpoint.
    pub fn new(
        net: &SimNet,
        identity: ChannelIdentity,
        keys: KeyPair,
        roots: RootOfTrust,
        seed: u64,
    ) -> RpcClient {
        let endpoint = net.attach(identity.name.clone()).expect("client name free");
        RpcClient {
            endpoint,
            identity,
            keys,
            roots,
            guard: ReplayGuard::new(u64::MAX / 4),
            rng: DetRng::new(seed),
            next_id: 1,
        }
    }

    /// One synchronous call: seal, send, block for the matching reply.
    pub fn call(
        &mut self,
        server: &Urn,
        server_key: ajanta_crypto::sig::PublicKey,
        op: &str,
        args: Vec<Value>,
    ) -> Result<Value, String> {
        let id = self.next_id;
        self.next_id += 1;
        let request = RpcRequest {
            id,
            op: op.to_string(),
            args,
        };
        let now = self.endpoint.net().clock().now();
        let datagram = SealedDatagram::seal(
            &self.identity,
            server,
            server_key,
            &request.to_bytes(),
            now,
            &mut self.rng,
        );
        self.endpoint
            .send(server, datagram.to_bytes())
            .map_err(|e| e.to_string())?;

        // Synchronous wait (the RPC model's defining property).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let delivery = self
                .endpoint
                .recv_timeout(deadline.saturating_duration_since(std::time::Instant::now()))
                .map_err(|_| "rpc timeout".to_string())?;
            let now = self.endpoint.net().clock().now();
            let Ok(dg) = SealedDatagram::from_bytes(&delivery.payload) else {
                continue;
            };
            let Ok((_, plaintext)) = dg.open(
                &self.identity,
                &self.keys,
                &self.roots,
                now,
                &mut self.guard,
            ) else {
                continue;
            };
            let Ok(response) = RpcResponse::from_bytes(&plaintext) else {
                continue;
            };
            if response.id == id {
                return response.result;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_crypto::cert::Certificate;
    use ajanta_net::LinkModel;

    struct Rig {
        net: SimNet,
        server: RpcServer,
        server_key: ajanta_crypto::sig::PublicKey,
        client: RpcClient,
    }

    fn rig(records: Vec<Vec<u8>>) -> Rig {
        let mut rng = DetRng::new(31);
        let net = SimNet::new(LinkModel::default(), 1);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let mk = |name: &Urn, serial, rng: &mut DetRng| {
            let keys = KeyPair::generate(rng);
            let cert = Certificate::issue(
                name.to_string(),
                keys.public,
                "ca",
                &ca,
                u64::MAX,
                serial,
                rng,
            );
            (
                ChannelIdentity {
                    name: name.clone(),
                    keys: keys.clone(),
                    chain: vec![cert],
                },
                keys,
            )
        };
        let sname = Urn::server("x.org", ["rpc"]).unwrap();
        let cname = Urn::server("y.org", ["client"]).unwrap();
        let (sid, skeys) = mk(&sname, 1, &mut rng);
        let (cid, ckeys) = mk(&cname, 2, &mut rng);
        let server_key = skeys.public;
        let store = RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            records,
        );
        let server = RpcServer::start(&net, sid, skeys, roots.clone(), store, 77);
        let client = RpcClient::new(&net, cid, ckeys, roots, 78);
        Rig {
            net,
            server,
            server_key,
            client,
        }
    }

    #[test]
    fn call_roundtrip() {
        let mut rig = rig(vec![b"alpha".to_vec(), b"beta".to_vec()]);
        let server_name = rig.server.name().clone();
        let v = rig
            .client
            .call(&server_name, rig.server_key, "count", vec![])
            .unwrap();
        assert_eq!(v, Value::Int(2));
        let v = rig
            .client
            .call(&server_name, rig.server_key, "get", vec![Value::Int(1)])
            .unwrap();
        assert_eq!(v, Value::Bytes(b"beta".to_vec()));
        rig.server.stop();
    }

    #[test]
    fn server_side_scan() {
        let mut rig = rig(vec![
            b"red fox".to_vec(),
            b"red hen".to_vec(),
            b"blue jay".to_vec(),
        ]);
        let server_name = rig.server.name().clone();
        let v = rig
            .client
            .call(
                &server_name,
                rig.server_key,
                "scan",
                vec![Value::str("red")],
            )
            .unwrap();
        assert_eq!(v, Value::Bytes(b"red fox\nred hen".to_vec()));
        rig.server.stop();
    }

    #[test]
    fn errors_propagate() {
        let mut rig = rig(vec![b"only".to_vec()]);
        let server_name = rig.server.name().clone();
        let err = rig
            .client
            .call(&server_name, rig.server_key, "get", vec![Value::Int(9)])
            .unwrap_err();
        assert!(err.contains("out of range"));
        let err = rig
            .client
            .call(&server_name, rig.server_key, "frobnicate", vec![])
            .unwrap_err();
        assert!(err.contains("no such method"));
        rig.server.stop();
    }

    #[test]
    fn network_bytes_are_accounted() {
        let mut rig = rig(vec![vec![b'x'; 1000]; 10]);
        let server_name = rig.server.name().clone();
        rig.net.reset_stats();
        rig.client
            .call(&server_name, rig.server_key, "scan", vec![Value::str("")])
            .unwrap();
        let stats = rig.net.stats();
        assert_eq!(stats.messages_delivered, 2); // request + response
                                                 // The response carried ~10 KB of records.
        assert!(stats.bytes_delivered > 10_000, "{stats:?}");
        rig.server.stop();
    }
}
