//! The security-manager-only baseline (paper Section 5.4, first
//! approach).
//!
//! *"One approach would be to check all resource accesses using the
//! security manager. This would require each resource developer to extend
//! or modify the security manager ... the security manager may tend to
//! become an excessively large module."*
//!
//! Here every access consults the full [`SecurityPolicy`] — groups,
//! subtree rules, rule-list scan — on **every** invocation, for **every**
//! resource. This is both the performance and the software-engineering
//! contrast to proxies: one central choke point accreting all
//! application policies.

use std::collections::BTreeMap;
use std::sync::Arc;

use ajanta_core::{MethodId, MethodTable, Resource, ResourceError, SecurityPolicy};
use ajanta_naming::Urn;
use ajanta_vm::Value;
use parking_lot::RwLock;

/// Access failure from the central gate. (`Denied` carries the full
/// identity triple deliberately — audit trails need it; the error path is
/// cold.)
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::result_large_err)]
pub enum GateError {
    /// The central policy denied this access.
    Denied {
        /// Refused agent.
        agent: Urn,
        /// Target resource.
        resource: Urn,
        /// Refused method.
        method: String,
    },
    /// No such resource is registered with the gate.
    UnknownResource(Urn),
    /// Underlying resource error.
    Resource(ResourceError),
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Denied {
                agent,
                resource,
                method,
            } => write!(f, "policy denies {agent} calling {method} on {resource}"),
            GateError::UnknownResource(r) => write!(f, "no resource {r}"),
            GateError::Resource(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GateError {}

/// The central gate: all resources, one policy, checked per call.
pub struct SecurityManagerGate {
    policy: RwLock<SecurityPolicy>,
    resources: RwLock<BTreeMap<Urn, Arc<dyn Resource>>>,
    checks: std::sync::atomic::AtomicU64,
}

impl SecurityManagerGate {
    /// A gate enforcing `policy`.
    pub fn new(policy: SecurityPolicy) -> Arc<Self> {
        Arc::new(SecurityManagerGate {
            policy: RwLock::new(policy),
            resources: RwLock::new(BTreeMap::new()),
            checks: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Registers a resource behind the gate.
    pub fn add_resource(&self, resource: Arc<dyn Resource>) {
        self.resources
            .write()
            .insert(resource.name().clone(), resource);
    }

    /// Replaces the policy (e.g. for dynamic policy-change tests).
    pub fn set_policy(&self, policy: SecurityPolicy) {
        *self.policy.write() = policy;
    }

    /// Every access from every agent lands here.
    #[allow(clippy::result_large_err)] // cold error path carries the audit triple
    pub fn invoke(
        &self,
        agent: &Urn,
        owner: &Urn,
        resource: &Urn,
        method: &str,
        args: &[Value],
    ) -> Result<Value, GateError> {
        self.checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Full policy evaluation per call — the cost proxies hoist to
        // get_proxy time.
        let allowed = self
            .policy
            .read()
            .rights_for(agent, owner)
            .permits(resource, method);
        if !allowed {
            return Err(GateError::Denied {
                agent: agent.clone(),
                resource: resource.clone(),
                method: method.to_string(),
            });
        }
        let target = self
            .resources
            .read()
            .get(resource)
            .cloned()
            .ok_or_else(|| GateError::UnknownResource(resource.clone()))?;
        target.invoke(method, args).map_err(GateError::Resource)
    }

    /// Total checks performed (monitor-pressure metric for X4).
    pub fn checks_performed(&self) -> u64 {
        self.checks.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resolves a resource once into a [`GateBinding`]: the target object
    /// and its interned method table are looked up at bind time, so each
    /// call pays only the mechanism's intrinsic cost — the full policy
    /// evaluation — and not a name-keyed map probe the proxy pipeline no
    /// longer pays.
    pub fn bind(self: &Arc<Self>, resource: &Urn) -> Option<GateBinding> {
        let target = self.resources.read().get(resource).cloned()?;
        let table = target.method_table();
        Some(GateBinding {
            gate: Arc::clone(self),
            name: resource.clone(),
            target,
            table,
        })
    }
}

/// A client's bound handle onto one gated resource. The central policy is
/// still consulted on **every** invocation — binding removes only the
/// incidental resource/method string lookups.
pub struct GateBinding {
    gate: Arc<SecurityManagerGate>,
    name: Urn,
    target: Arc<dyn Resource>,
    table: Arc<MethodTable>,
}

impl GateBinding {
    /// Resolves a method name against the bound interface (bind-time).
    pub fn method_id(&self, name: &str) -> Option<MethodId> {
        self.table.id(name)
    }

    /// One gated access by interned id: policy evaluation per call, then
    /// array-indexed dispatch.
    #[allow(clippy::result_large_err)] // cold error path carries the audit triple
    pub fn invoke_id(
        &self,
        agent: &Urn,
        owner: &Urn,
        method: MethodId,
        args: &[Value],
    ) -> Result<Value, GateError> {
        self.gate
            .checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name = self.table.name(method).ok_or_else(|| GateError::Denied {
            agent: agent.clone(),
            resource: self.name.clone(),
            method: format!("#{}", method.0),
        })?;
        let allowed = self
            .gate
            .policy
            .read()
            .rights_for(agent, owner)
            .permits(&self.name, name);
        if !allowed {
            return Err(GateError::Denied {
                agent: agent.clone(),
                resource: self.name.clone(),
                method: name.to_string(),
            });
        }
        self.target.invoke(name, args).map_err(GateError::Resource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::RecordStore;
    use ajanta_core::{PrincipalPattern, Rights};

    fn setup() -> (Arc<SecurityManagerGate>, Urn, Urn, Urn) {
        let rname = Urn::resource("x.org", ["db"]).unwrap();
        let agent = Urn::agent("x.org", ["a"]).unwrap();
        let owner = Urn::owner("x.org", ["alice"]).unwrap();
        let policy = SecurityPolicy::new().allow(
            PrincipalPattern::Exact(owner.clone()),
            Rights::none().grant_method(rname.clone(), "count"),
        );
        let gate = SecurityManagerGate::new(policy);
        gate.add_resource(RecordStore::new(
            rname.clone(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![b"r1".to_vec()],
        ));
        (gate, agent, owner, rname)
    }

    #[test]
    fn policy_enforced_per_call() {
        let (gate, agent, owner, rname) = setup();
        assert_eq!(
            gate.invoke(&agent, &owner, &rname, "count", &[]).unwrap(),
            Value::Int(1)
        );
        assert!(matches!(
            gate.invoke(&agent, &owner, &rname, "scan", &[Value::str("r")]),
            Err(GateError::Denied { .. })
        ));
        // Every attempt (allowed or not) cost a policy evaluation.
        assert_eq!(gate.checks_performed(), 2);
    }

    #[test]
    fn unknown_principal_denied() {
        let (gate, agent, _, rname) = setup();
        let eve = Urn::owner("x.org", ["eve"]).unwrap();
        assert!(matches!(
            gate.invoke(&agent, &eve, &rname, "count", &[]),
            Err(GateError::Denied { .. })
        ));
    }

    #[test]
    fn unknown_resource_reported_after_policy() {
        let (gate, agent, owner, _) = setup();
        let ghost = Urn::resource("x.org", ["ghost"]).unwrap();
        // Policy denies unknown resources first (no grant covers them).
        assert!(matches!(
            gate.invoke(&agent, &owner, &ghost, "count", &[]),
            Err(GateError::Denied { .. })
        ));
    }

    #[test]
    fn bound_gate_matches_string_path() {
        let (gate, agent, owner, rname) = setup();
        let binding = gate.bind(&rname).expect("resource is registered");
        let count = binding.method_id("count").unwrap();
        let scan = binding.method_id("scan").unwrap();
        assert_eq!(
            binding.invoke_id(&agent, &owner, count, &[]).unwrap(),
            Value::Int(1)
        );
        assert!(matches!(
            binding.invoke_id(&agent, &owner, scan, &[Value::str("r")]),
            Err(GateError::Denied { .. })
        ));
        // Bound calls still hit the central monitor's counter.
        assert_eq!(gate.checks_performed(), 2);
        // Policy swaps apply to existing bindings immediately — binding
        // caches the target, never the decision.
        gate.set_policy(SecurityPolicy::new());
        assert!(matches!(
            binding.invoke_id(&agent, &owner, count, &[]),
            Err(GateError::Denied { .. })
        ));
        assert!(gate
            .bind(&Urn::resource("x.org", ["ghost"]).unwrap())
            .is_none());
    }

    #[test]
    fn dynamic_policy_change_applies_immediately() {
        let (gate, agent, owner, rname) = setup();
        gate.set_policy(SecurityPolicy::new()); // deny-all
        assert!(matches!(
            gate.invoke(&agent, &owner, &rname, "count", &[]),
            Err(GateError::Denied { .. })
        ));
    }
}
