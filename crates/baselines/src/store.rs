//! The record store: the information substrate every competitor queries.
//!
//! A plain line-oriented store of byte records with substring selection —
//! deliberately simple so the interesting measurements are about *where
//! the filtering happens* (client, server, or migrated code), not about
//! query sophistication.

use std::sync::Arc;

use ajanta_core::{MethodSpec, MethodTable, Resource, ResourceError};
use ajanta_naming::Urn;
use ajanta_vm::{Ty, Value};

/// An immutable store of byte-string records.
pub struct RecordStore {
    name: Urn,
    owner: Urn,
    records: Vec<Vec<u8>>,
    /// Interned interface, built once — every mechanism benched over this
    /// store binds method names through the same table.
    table: Arc<MethodTable>,
}

impl RecordStore {
    /// Wraps `records` as a store named `name`.
    pub fn new(name: Urn, owner: Urn, records: Vec<Vec<u8>>) -> Arc<Self> {
        Arc::new(RecordStore {
            name,
            owner,
            records,
            table: MethodTable::new(["count", "get", "scan", "scan_count"]),
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record `i`, if present.
    pub fn get(&self, i: usize) -> Option<&[u8]> {
        self.records.get(i).map(|r| r.as_slice())
    }

    /// All records matching `selector` (substring match), newline-joined —
    /// the server-side filtering path.
    pub fn scan(&self, selector: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.records {
            if contains(r, selector) {
                if !out.is_empty() {
                    out.push(b'\n');
                }
                out.extend_from_slice(r);
            }
        }
        out
    }

    /// Count of matching records.
    pub fn scan_count(&self, selector: &[u8]) -> usize {
        self.records
            .iter()
            .filter(|r| contains(r, selector))
            .count()
    }

    /// Total bytes across all records (the bulk-transfer size).
    pub fn total_bytes(&self) -> usize {
        self.records.iter().map(|r| r.len()).sum()
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    needle.is_empty() || haystack.windows(needle.len()).any(|w| w == needle)
}

impl Resource for RecordStore {
    fn name(&self) -> &Urn {
        &self.name
    }
    fn owner(&self) -> &Urn {
        &self.owner
    }
    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("count", [], Ty::Int),
            MethodSpec::new("get", [Ty::Int], Ty::Bytes),
            MethodSpec::new("scan", [Ty::Bytes], Ty::Bytes),
            MethodSpec::new("scan_count", [Ty::Bytes], Ty::Int),
        ]
    }
    fn method_table(&self) -> Arc<MethodTable> {
        Arc::clone(&self.table)
    }
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
        self.check_args(method, args)?;
        match method {
            "count" => Ok(Value::Int(self.records.len() as i64)),
            "get" => {
                let i = args[0].as_int().expect("checked");
                let i = usize::try_from(i)
                    .ok()
                    .filter(|&i| i < self.records.len())
                    .ok_or_else(|| ResourceError::Failed(format!("index {i} out of range")))?;
                Ok(Value::Bytes(self.records[i].clone()))
            }
            "scan" => Ok(Value::Bytes(
                self.scan(args[0].as_bytes().expect("checked")),
            )),
            "scan_count" => Ok(Value::Int(
                self.scan_count(args[0].as_bytes().expect("checked")) as i64,
            )),
            other => Err(ResourceError::NoSuchMethod(other.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<RecordStore> {
        RecordStore::new(
            Urn::resource("x.org", ["db"]).unwrap(),
            Urn::owner("x.org", ["admin"]).unwrap(),
            vec![
                b"widget red 10".to_vec(),
                b"widget blue 12".to_vec(),
                b"gadget red 99".to_vec(),
            ],
        )
    }

    #[test]
    fn scan_filters_by_substring() {
        let s = store();
        assert_eq!(s.scan(b"widget"), b"widget red 10\nwidget blue 12".to_vec());
        assert_eq!(s.scan_count(b"red"), 2);
        assert_eq!(s.scan(b"nothing"), Vec::<u8>::new());
        assert_eq!(s.scan_count(b""), 3); // empty selector matches all
    }

    #[test]
    fn resource_interface_works() {
        let s = store();
        assert_eq!(s.invoke("count", &[]).unwrap(), Value::Int(3));
        assert_eq!(
            s.invoke("get", &[Value::Int(2)]).unwrap(),
            Value::Bytes(b"gadget red 99".to_vec())
        );
        assert_eq!(
            s.invoke("scan_count", &[Value::str("blue")]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn out_of_range_get_fails() {
        let s = store();
        assert!(matches!(
            s.invoke("get", &[Value::Int(3)]),
            Err(ResourceError::Failed(_))
        ));
        assert!(matches!(
            s.invoke("get", &[Value::Int(-1)]),
            Err(ResourceError::Failed(_))
        ));
    }

    #[test]
    fn sizes_reported() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.total_bytes(), 13 + 14 + 13);
    }
}
