//! Baselines: every design the paper compares proxies against, plus the
//! client–server substrates for the communication-volume experiments.
//!
//! Paper Section 5.4 weighs four ways to bind agents to resources:
//!
//! 1. **security-manager-only** — route every access through the central
//!    reference monitor ([`secmgr`]); the policy is evaluated on every
//!    call and the monitor "may tend to become an excessively large
//!    module".
//! 2. **proxies** — the paper's choice (implemented in `ajanta-core`):
//!    policy is consulted once at `get_proxy`, after which each call pays
//!    only an enabled-set lookup.
//! 3. **wrappers** — one wrapper per resource with an ACL checked on
//!    *every* invocation ([`wrapper`]); "all clients must be subjected to
//!    the same access control mechanism, which is invoked on every access
//!    to the resource".
//! 4. **dual environments** (Safe Tcl) — a safe environment screens each
//!    request and forwards it to a trusted one; "it may require a
//!    transition across system-level protection domains on every resource
//!    access" ([`dualenv`] makes that transition a real thread crossing
//!    with marshaled arguments).
//!
//! For the motivation experiments (Section 1, Harrison et al.): [`rpc`]
//! (client–server remote procedure calls), [`rev`] (Stamos & Gifford's
//! Remote Evaluation), and [`store`] (the record-store substrate all
//! competitors query).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dualenv;
pub mod rev;
pub mod rpc;
pub mod secmgr;
pub mod store;
pub mod wrapper;

pub use dualenv::{DualEnv, DualEnvError};
pub use rev::{filter_program, RevClient, RevRequest, RevServer};
pub use rpc::{RpcClient, RpcRequest, RpcResponse, RpcServer};
pub use secmgr::{GateError, SecurityManagerGate};
pub use store::RecordStore;
pub use wrapper::{WrappedResource, WrapperError};
