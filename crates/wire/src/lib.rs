//! Canonical binary encoding for the Ajanta reproduction.
//!
//! Everything that crosses the simulated network (agent images, transfer
//! frames) or gets signed (credentials, certificates) must have one
//! unambiguous byte representation — signatures bind *bytes*, so two
//! encodings of the same value would be a security bug. This crate is that
//! single source of truth: a tiny, dependency-free, deterministic codec.
//!
//! Format rules:
//! * integers: unsigned LEB128 varints (`u64`); signed values zig-zag
//!   first;
//! * byte strings & UTF-8 strings: varint length prefix, then raw bytes;
//! * sequences: varint element count, then elements in order;
//! * options: 1-byte tag (0 = none, 1 = some);
//! * enums: 1-byte discriminant chosen by the implementing type.
//!
//! Types participate by implementing [`Wire`]; decoding is strict (trailing
//! garbage, truncation, over-long varints and invalid UTF-8 are all
//! errors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint used more than 10 bytes or had a non-minimal encoding.
    BadVarint,
    /// A string field contained invalid UTF-8.
    BadUtf8,
    /// An enum discriminant byte was out of range for the type.
    BadTag {
        /// Name of the type being decoded.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded the decoder's sanity limit.
    TooLong(u64),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
    /// Domain-specific validation failed after structural decoding.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("input truncated"),
            WireError::BadVarint => f.write_str("malformed varint"),
            WireError::BadUtf8 => f.write_str("invalid utf-8 in string"),
            WireError::BadTag { ty, tag } => write!(f, "bad tag {tag} for {ty}"),
            WireError::TooLong(n) => write!(f, "length {n} exceeds decoder limit"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity cap on any single length prefix (64 MiB). Prevents a malicious
/// peer from making a decoder pre-allocate unbounded memory.
pub const MAX_LEN: u64 = 64 << 20;

/// Appends `v` as a LEB128 varint to `out` — the standalone form of
/// [`Encoder::put_varint`] for hot paths that build frames in pooled
/// buffers without constructing an `Encoder`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The exact number of bytes [`write_varint`] emits for `v` — what lets
/// a single-pass frame encoder reserve its varint length header up
/// front instead of encoding into a temporary and copying.
pub const fn varint_len(v: u64) -> usize {
    // ceil(bits/7), minimum 1 byte for zero.
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Encoder: an append-only byte sink.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer and appends to it — the reuse path: a
    /// pooled `Vec` keeps its capacity across frames instead of every
    /// encode paying a fresh allocation. Existing contents are kept
    /// (callers that want a clean slate call [`Encoder::reset`] or
    /// `Vec::clear` first).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Encoder { buf }
    }

    /// Clears the contents, keeping the allocated capacity — reuse
    /// between frames without reallocating.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far, borrowed.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, yielding the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Writes a `u64` as LEB128.
    pub fn put_varint(&mut self, v: u64) {
        write_varint(&mut self.buf, v);
    }

    /// Writes an `i64` zig-zag encoded.
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes raw bytes with a varint length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a string with a varint length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes raw bytes with **no** length prefix (fixed-width fields).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Decoder: a cursor over input bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 `u64`, rejecting non-minimal encodings.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::BadVarint); // would overflow u64
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                // Reject non-minimal encodings like [0x80, 0x00].
                if byte == 0 && shift != 0 {
                    return Err(WireError::BadVarint);
                }
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::BadVarint);
            }
        }
    }

    /// Reads a zig-zag `i64`.
    pub fn get_varint_signed(&mut self) -> Result<i64, WireError> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_varint()?;
        if len > MAX_LEN {
            return Err(WireError::TooLong(len));
        }
        let len = len as usize;
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let out = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads exactly `n` raw bytes (fixed-width fields).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// A type with one canonical byte encoding.
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self`.
    fn encode(&self, e: &mut Encoder);
    /// Decodes one value from the cursor.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError>;

    /// Encodes to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    /// Appends the canonical encoding to an existing buffer — the
    /// pooled-buffer path. Byte-identical to [`Wire::to_bytes`] (it
    /// runs the same [`Wire::encode`]) but reuses `out`'s capacity, so
    /// a steady-state send loop never allocates per value. The buffer
    /// is moved through an [`Encoder`] and back; no copy is made.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut e = Encoder::from_vec(std::mem::take(out));
        self.encode(&mut e);
        *out = e.finish();
    }

    /// Decodes a complete value, rejecting trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(bytes);
        let v = Self::decode(&mut d)?;
        d.expect_end()?;
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_varint()
    }
}

impl Wire for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(u64::from(*self));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        u32::try_from(d.get_varint()?).map_err(|_| WireError::Invalid("u32 out of range"))
    }
}

impl Wire for u16 {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(u64::from(*self));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        u16::try_from(d.get_varint()?).map_err(|_| WireError::Invalid("u16 out of range"))
    }
}

impl Wire for i64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint_signed(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_varint_signed()
    }
}

impl Wire for bool {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(u8::from(*self));
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { ty: "bool", tag }),
        }
    }
}

impl Wire for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_str()
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, e: &mut Encoder) {
        e.put_bytes(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_bytes()
    }
}

/// Sequences: count then elements. (Blanket impl would conflict with
/// `Vec<u8>`'s specialized packed form, so each element type gets the
/// generic path through this helper pair.)
pub fn encode_seq<T: Wire>(items: &[T], e: &mut Encoder) {
    e.put_varint(items.len() as u64);
    for item in items {
        item.encode(e);
    }
}

/// Decodes a sequence written by [`encode_seq`].
pub fn decode_seq<T: Wire>(d: &mut Decoder<'_>) -> Result<Vec<T>, WireError> {
    let n = d.get_varint()?;
    if n > MAX_LEN {
        return Err(WireError::TooLong(n));
    }
    // Guard pre-allocation by remaining input: every element costs ≥1 byte.
    let n = n as usize;
    if n > d.remaining() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(d)?);
    }
    Ok(out)
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            tag => Err(WireError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u64::MAX / 2, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn signed_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_encoding_is_minimal() {
        // 127 must be one byte, 128 two.
        assert_eq!(127u64.to_bytes().len(), 1);
        assert_eq!(128u64.to_bytes().len(), 2);
        // Non-minimal encoding [0x80, 0x00] must be rejected.
        assert_eq!(u64::from_bytes(&[0x80, 0x00]), Err(WireError::BadVarint));
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        assert_eq!(u64::from_bytes(&[0x80]), Err(WireError::Truncated));
        // 11 continuation bytes: too many.
        let long = [0xffu8; 11];
        assert!(matches!(
            u64::from_bytes(&long),
            Err(WireError::BadVarint) | Err(WireError::TrailingBytes(_))
        ));
        // 2^64 exactly: 10th byte = 2.
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert_eq!(u64::from_bytes(&overflow), Err(WireError::BadVarint));
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        roundtrip(String::from(""));
        roundtrip(String::from("héllo wörld"));
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![0u8, 255, 1, 2, 3]);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&e.finish()), Err(WireError::BadUtf8));
    }

    #[test]
    fn options_and_tuples() {
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip((7u64, String::from("x")));
        assert!(matches!(
            Option::<u64>::from_bytes(&[9]),
            Err(WireError::BadTag {
                ty: "Option",
                tag: 9
            })
        ));
    }

    #[test]
    fn bool_tags_strict() {
        roundtrip(true);
        roundtrip(false);
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(WireError::BadTag { ty: "bool", tag: 2 })
        ));
    }

    #[test]
    fn sequences_roundtrip() {
        let v: Vec<u64> = (0..100).collect();
        let mut e = Encoder::new();
        encode_seq(&v, &mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(decode_seq::<u64>(&mut d).unwrap(), v);
        d.expect_end().unwrap();
    }

    #[test]
    fn sequence_count_lies_are_caught() {
        let mut e = Encoder::new();
        e.put_varint(1_000_000); // claims a million elements
        e.put_varint(1); // provides one
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(decode_seq::<u64>(&mut d).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut e = Encoder::new();
        e.put_varint(MAX_LEN + 1);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes(), Err(WireError::TooLong(MAX_LEN + 1)));
    }

    #[test]
    fn trailing_bytes_rejected_at_top_level() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn truncated_bytes_field() {
        let mut e = Encoder::new();
        e.put_varint(10);
        e.put_raw(&[1, 2, 3]); // only 3 of 10
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes(), Err(WireError::Truncated));
    }

    #[test]
    fn raw_fixed_width_fields() {
        let mut e = Encoder::new();
        e.put_raw(&[9, 8, 7]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_raw(3).unwrap(), &[9, 8, 7]);
        assert_eq!(d.get_raw(1), Err(WireError::Truncated));
    }

    #[test]
    fn encoder_capacity_and_len() {
        let mut e = Encoder::with_capacity(64);
        assert!(e.is_empty());
        e.put_u8(1);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn varint_len_matches_encoding_width() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            (1 << 21) - 1,
            1 << 21,
            (1 << 28) - 1,
            1 << 28,
            (1 << 35) - 1,
            1 << 35,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v), "width mismatch for {v}");
            assert_eq!(out, v.to_bytes(), "free fn diverges from Encoder for {v}");
        }
    }

    #[test]
    fn encode_into_is_byte_identical_and_reuses_capacity() {
        let mut buf = Vec::new();
        let values: Vec<(u64, String)> = (0..64).map(|i| (i * 257, format!("value-{i}"))).collect();
        for v in &values {
            buf.clear();
            v.encode_into(&mut buf);
            assert_eq!(buf, v.to_bytes());
        }
        // After warmup the buffer's capacity is stable: reuse must not
        // shrink or reallocate for same-sized values.
        buf.clear();
        values[0].encode_into(&mut buf);
        let cap = buf.capacity();
        for v in &values {
            buf.clear();
            v.encode_into(&mut buf);
        }
        assert!(buf.capacity() >= cap, "reuse lost the pooled capacity");
    }

    #[test]
    fn encode_into_appends_after_existing_bytes() {
        let mut buf = vec![0xAA, 0xBB];
        7u64.encode_into(&mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(&buf[2..], 7u64.to_bytes().as_slice());
    }

    #[test]
    fn encoder_from_vec_and_reset_keep_capacity() {
        let mut e = Encoder::from_vec(Vec::with_capacity(128));
        e.put_bytes(&[1; 100]);
        assert_eq!(e.as_slice().len(), 101);
        e.reset();
        assert!(e.is_empty());
        let buf = e.finish();
        assert!(buf.capacity() >= 128);
    }
}
