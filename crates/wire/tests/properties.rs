//! Property tests: the codec is a total bijection on its domain and never
//! panics on adversarial input.

use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(i64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(s in ".*") {
        prop_assert_eq!(&String::from_bytes(&s.to_bytes()).unwrap(), &s);
    }

    #[test]
    fn bytes_roundtrip(b in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(Vec::<u8>::from_bytes(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn mixed_struct_roundtrip(a in any::<u64>(), b in any::<i64>(), s in ".{0,64}",
                              v in proptest::collection::vec(any::<u64>(), 0..64),
                              o in proptest::option::of(any::<u64>())) {
        let mut e = Encoder::new();
        a.encode(&mut e);
        b.encode(&mut e);
        s.encode(&mut e);
        encode_seq(&v, &mut e);
        o.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(u64::decode(&mut d).unwrap(), a);
        prop_assert_eq!(i64::decode(&mut d).unwrap(), b);
        prop_assert_eq!(String::decode(&mut d).unwrap(), s);
        prop_assert_eq!(decode_seq::<u64>(&mut d).unwrap(), v);
        prop_assert_eq!(Option::<u64>::decode(&mut d).unwrap(), o);
        d.expect_end().unwrap();
    }

    /// Decoding arbitrary garbage returns an error or a value — never
    /// panics, never loops.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = u64::from_bytes(&bytes);
        let _ = i64::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<u8>::from_bytes(&bytes);
        let mut d = Decoder::new(&bytes);
        let _ = decode_seq::<u64>(&mut d);
    }

    /// Encodings are prefix-free per type stream: decoding consumes exactly
    /// what encoding produced (checked by concatenating two values).
    #[test]
    fn encoding_self_delimits(a in ".{0,32}", b in ".{0,32}") {
        let mut e = Encoder::new();
        a.encode(&mut e);
        b.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(String::decode(&mut d).unwrap(), a);
        prop_assert_eq!(String::decode(&mut d).unwrap(), b);
        d.expect_end().unwrap();
    }
}
