//! Offline vendored shim for the `proptest` crate.
//!
//! The build sandbox has no crates.io access, so this workspace vendors a
//! deterministic mini property-testing framework exposing the proptest API
//! surface its test suites use: the [`proptest!`] / [`prop_oneof!`] /
//! `prop_assert*` macros, the [`strategy::Strategy`] trait with `prop_map`,
//! `any::<T>()`, integer-range and regex-literal strategies,
//! `collection::vec`, `option::of`, and `sample::{select, Index}`.
//!
//! Differences from real proptest, deliberately accepted: generation is
//! seeded from the test name (fully deterministic, no persisted failure
//! seeds), there is no shrinking, and the regex-literal strategies support
//! only the subset this workspace's tests write (`.`, character classes,
//! `*`/`+`/`?`/`{m,n}` quantifiers).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG and case-outcome plumbing used by the [`crate::proptest!`]
    //! expansion.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is discarded, not a failure.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    /// Deterministic splitmix64 generator; seeded from the test's name so
    /// every run of the suite explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test function's name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        #[allow(clippy::should_implement_trait)] // not an Iterator; name kept for rand parity
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy behind `dyn`, unifying the arm types of
    /// [`crate::prop_oneof!`].
    pub fn boxed<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among boxed strategies; backs [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one nonzero weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128) - (self.start as i128);
                    let off = (u128::from(rng.next()) % (width as u128)) as i128;
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo + 1) as u128;
                    let off = (u128::from(rng.next()) % width) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// A `&'static str` is a regex-literal strategy producing matching
    /// strings (supported subset: `.`, `[...]` classes, `*`/`+`/`?`/`{m,n}`).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::regex_gen::generate(self, rng)
        }
    }
}

mod regex_gen {
    //! Tiny generator for the regex subset the workspace's tests use as
    //! string strategies.

    use crate::test_runner::TestRng;

    enum Atom {
        Any,
        Class(Vec<char>),
        Lit(char),
    }

    impl Atom {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Lit(c) => *c,
                Atom::Class(pool) => pool[rng.below(pool.len() as u64) as usize],
                Atom::Any => {
                    // Mostly printable ASCII, sometimes multi-byte unicode so
                    // codecs see non-trivial UTF-8; never '\n' (regex `.`).
                    const WIDE: &[char] = &['é', 'ß', 'λ', '中', '☃', '𝄞', '\u{203d}'];
                    if rng.below(8) == 0 {
                        WIDE[rng.below(WIDE.len() as u64) as usize]
                    } else {
                        char::from(0x20 + (rng.below(95) as u8))
                    }
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut out = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut pool = Vec::new();
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        if c == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            let mut ahead = chars.clone();
                            ahead.next();
                            match ahead.peek() {
                                Some(&end) if end != ']' => {
                                    chars.next();
                                    chars.next();
                                    pool.extend(c..=end);
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        pool.push(c);
                    }
                    assert!(!pool.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(pool)
                }
                '\\' => Atom::Lit(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                ),
                other => Atom::Lit(other),
            };
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let m: usize = spec.trim().parse().expect("quantifier count");
                            (m, m)
                        }
                    }
                }
                _ => (1, 1),
            };
            out.push((atom, min, max));
        }
        out
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse(pattern) {
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for any [`Arbitrary`] type.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (`any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Edge-biased u64: zeros, small values, `MAX`, near powers of two, and
    /// uniform draws — varint and length-prefix codecs see their corners.
    fn edge_biased_u64(rng: &mut TestRng) -> u64 {
        match rng.below(8) {
            0 => 0,
            1 => rng.below(256),
            2 => u64::MAX,
            3 => {
                let bit = 1u64 << rng.below(64);
                match rng.below(3) {
                    0 => bit.wrapping_sub(1),
                    1 => bit,
                    _ => bit.wrapping_add(1),
                }
            }
            _ => rng.next(),
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    edge_biased_u64(rng) as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive size window for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..n)` — a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `of(inner)` — `Some(inner draw)` or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling strategies: `select` and `Index`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy drawing uniformly from `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// An abstract index resolved against a concrete length at use time
    /// (`idx.index(len)`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves against `len` (must be nonzero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    //! The glob-imported proptest surface.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest};

    /// `prop::...` paths (e.g. `prop::sample::select`).
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(20).saturating_add(100) {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), __accepted, __config.cases
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                __l, __r
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                __l, __r
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
