//! Offline vendored shim for the `serde` crate.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! purely as interface documentation — all real serialization goes through
//! `ajanta-wire`. With no crates.io access in the build sandbox, this shim
//! provides empty marker traits plus the no-op derives from the vendored
//! `serde_derive`, so the annotations compile without pulling anything in.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
