//! Offline vendored shim for the `criterion` crate.
//!
//! The build sandbox cannot reach crates.io, so this workspace vendors a
//! small benchmark harness exposing the criterion API its benches use:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], `b.iter(..)`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! auto-calibrated to a ~25 ms measurement window per sample and reports the
//! median ns/iter to stdout; there are no plots, baselines, or statistics
//! beyond min/median/max.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 20, None, f);
        self
    }
}

/// A group of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares the per-iteration work volume for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput.clone(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput.clone(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter` shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Work volume represented by one iteration, for derived throughput lines.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    /// Iterations the routine should run this sample (set by the harness).
    iters: u64,
    /// Measured wall time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` runs of `routine`, excluding a per-iteration `setup`
    /// that builds the input the routine consumes.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the per-sample iteration count until one sample takes
    // ~25 ms (capped so pathological routines still finish).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(25) || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed < Duration::from_micros(50) {
            100
        } else {
            4
        };
        iters = iters.saturating_mul(grow).min(1 << 20);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, c| a.total_cmp(c));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];

    let mut line = format!(
        "{label:<56} {:>12}/iter  [{} .. {}]",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
    match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let mbps = n as f64 / median * 1e9 / (1024.0 * 1024.0);
            line.push_str(&format!("  {mbps:.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let eps = n as f64 / median * 1e9;
            line.push_str(&format!("  {eps:.0} elem/s"));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group runner invoking each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
