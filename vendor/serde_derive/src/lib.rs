//! Offline vendored shim for `serde_derive`.
//!
//! This workspace uses `#[derive(Serialize, Deserialize)]` only as interface
//! documentation — nothing serializes through serde (the wire format is
//! `ajanta-wire`). The sandbox cannot reach crates.io, so these derives
//! expand to nothing; the annotated types simply do not implement the (empty)
//! marker traits in the vendored `serde` shim.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
