//! Offline vendored shim for the `parking_lot` crate.
//!
//! The build sandbox has no access to crates.io, so this workspace vendors
//! the minimal API surface it actually uses: [`Mutex`] and [`RwLock`] whose
//! guards are obtained without a poisoning `Result`. Backed by `std::sync`;
//! a poisoned lock (a panic while held) is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics closely enough for this
//! codebase.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A condition variable paired with [`Mutex`].
///
/// Unlike real parking_lot (which re-parks the guard in place), this shim
/// keeps `std`'s consume-and-return guard API: `wait*` take the guard by
/// value and hand it back, recovering from poisoning like [`Mutex::lock`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Releases the guard, blocks until notified, and re-acquires it.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Like [`Condvar::wait`] with a timeout; the bool is "timed out".
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}
