//! MPMC channels compatible with the `crossbeam-channel` API surface this
//! workspace uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use crate::select;

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on a channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// One-shot wakeup used by `select!` to sleep until *any* watched channel
/// has activity.
struct SelectSignal {
    fired: Mutex<bool>,
    cond: Condvar,
}

impl SelectSignal {
    fn new() -> Arc<Self> {
        Arc::new(SelectSignal {
            fired: Mutex::new(false),
            cond: Condvar::new(),
        })
    }

    fn fire(&self) {
        *self.fired.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cond.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let guard = self.fired.lock().unwrap_or_else(|e| e.into_inner());
        if *guard {
            return;
        }
        let _ = self
            .cond
            .wait_timeout_while(guard, timeout, |fired| !*fired);
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// One-shot select wakers; drained on every send / disconnect.
    selects: Vec<Arc<SelectSignal>>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or the last sender leaves.
    recv_cond: Condvar,
    /// Signalled when queue space frees up or the last receiver leaves.
    send_cond: Condvar,
    /// `None` for unbounded channels.
    cap: Option<usize>,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wake_selects(state: &mut State<T>) {
        for s in state.selects.drain(..) {
            s.fire();
        }
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel that holds at most `cap` in-flight messages; `send`
/// blocks while the channel is full. `bounded(0)` is approximated with a
/// capacity of one (no rendezvous semantics — unused in this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            selects: Vec::new(),
        }),
        recv_cond: Condvar::new(),
        send_cond: Condvar::new(),
        cap,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .inner
                        .send_cond
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        Inner::wake_selects(&mut state);
        drop(state);
        self.inner.recv_cond.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        if state.senders == 0 {
            Inner::wake_selects(&mut state);
            drop(state);
            self.inner.recv_cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders leave.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.send_cond.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .recv_cond
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.send_cond.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .inner
                .recv_cond
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.inner.send_cond.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the channel currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Identity helper used by the `select!` expansion so both owned
    /// receivers and `&Receiver` expressions unify via auto-(de)ref.
    #[doc(hidden)]
    pub fn __select_ref(&self) -> &Receiver<T> {
        self
    }

    fn register_select(&self, signal: &Arc<SelectSignal>) {
        let mut state = self.inner.lock();
        // Already actionable: fire immediately instead of registering.
        if !state.queue.is_empty() || state.senders == 0 {
            signal.fire();
        } else {
            state.selects.push(Arc::clone(signal));
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.inner.send_cond.notify_all();
        }
    }
}

/// Blocking message iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

/// Which of the two watched channels produced a result.
#[doc(hidden)]
pub enum __Select2<A, B> {
    A(Result<A, RecvError>),
    B(Result<B, RecvError>),
}

/// Blocks until either receiver yields a message or disconnects, popping
/// atomically. Backs the two-receiver [`select!`] form; arm bodies run in
/// the caller, *outside* any loop, so `break`/`continue` inside them bind
/// to the caller's enclosing loop exactly as with real crossbeam.
#[doc(hidden)]
pub fn __select2<A, B>(ra: &Receiver<A>, rb: &Receiver<B>) -> __Select2<A, B> {
    loop {
        match ra.try_recv() {
            Ok(v) => return __Select2::A(Ok(v)),
            Err(TryRecvError::Disconnected) => return __Select2::A(Err(RecvError)),
            Err(TryRecvError::Empty) => {}
        }
        match rb.try_recv() {
            Ok(v) => return __Select2::B(Ok(v)),
            Err(TryRecvError::Disconnected) => return __Select2::B(Err(RecvError)),
            Err(TryRecvError::Empty) => {}
        }
        let signal = SelectSignal::new();
        ra.register_select(&signal);
        rb.register_select(&signal);
        // Bounded wait as a lost-wakeup backstop; normal wakeups arrive via
        // the registered signal the moment either channel changes state.
        signal.wait(Duration::from_millis(50));
    }
}

/// Two-receiver `select!` supporting the
/// `recv(r) -> msg => body` arm form of `crossbeam::channel::select!`.
#[macro_export]
macro_rules! select {
    (recv($ra:expr) -> $pa:pat => $ba:expr, recv($rb:expr) -> $pb:pat => $bb:expr $(,)?) => {
        match $crate::channel::__select2($ra.__select_ref(), $rb.__select_ref()) {
            $crate::channel::__Select2::A(__msg) => {
                let $pa = __msg;
                $ba
            }
            $crate::channel::__Select2::B(__msg) => {
                let $pb = __msg;
                $bb
            }
        }
    };
}
