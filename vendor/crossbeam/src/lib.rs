//! Offline vendored shim for the `crossbeam` crate (channel API only).
//!
//! The build sandbox cannot reach crates.io, so this workspace vendors the
//! subset of `crossbeam::channel` it uses: [`channel::unbounded`],
//! [`channel::bounded`], blocking/timeout/non-blocking receives with
//! disconnect detection, and a [`select!`] macro supporting the two-receiver
//! form the runtime's server loop needs. Implemented with
//! `Mutex<VecDeque>` + `Condvar` plus a one-shot waker registry so `select!`
//! blocks properly instead of busy-polling.

#![forbid(unsafe_code)]

pub mod channel;
